"""Tests for repro.sweeps.distributed: lease lifecycle, work stealing,
crash reclamation, and byte-identity with single-process runs."""

import hashlib
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

import repro
from repro.sweeps import SweepGrid, SweepStore, run_sweep
from repro.sweeps.analysis import ResultTable
from repro.sweeps.distributed import WorkerReport, run_distributed, run_worker
from repro.sweeps.runner import plan_sweep

KEY_A = "a" * 64
KEY_B = "b" * 64


def tiny_grid(**kwargs):
    defaults = dict(
        benchmarks=("ADD",),
        techniques=("parallax", "graphine"),
        spec_axes={"cz_error": (0.002, 0.004)},
        shots=120,
        base_seed=5,
    )
    defaults.update(kwargs)
    return SweepGrid(**defaults)


def store_digest(directory) -> dict:
    """Filename -> sha256 of every record file (byte-level store content)."""
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(directory).glob("*.json"))
    }


def age_lease(store: SweepStore, key: str, seconds: float) -> None:
    """Back-date a lease's heartbeat, simulating a stalled/dead owner."""
    past = time.time() - seconds
    os.utime(store.lease_path(key), (past, past))


class TestLeaseLifecycle:
    def test_acquire_release_round_trip(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        assert store.acquire_lease(KEY_A, "w1") == "acquired"
        assert store.lease_path(KEY_A).exists()
        lease = store.read_lease(KEY_A)
        assert lease["owner"] == "w1"
        assert lease["age_s"] < 10.0
        # A live lease blocks every other claimer.
        assert store.acquire_lease(KEY_A, "w2") is None
        # Only the owner can release.
        assert not store.release_lease(KEY_A, "w2")
        assert store.lease_path(KEY_A).exists()
        assert store.release_lease(KEY_A, "w1")
        assert store.read_lease(KEY_A) is None
        assert store.acquire_lease(KEY_A, "w2") == "acquired"

    def test_keys_lease_independently(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        assert store.acquire_lease(KEY_A, "w1") == "acquired"
        assert store.acquire_lease(KEY_B, "w2") == "acquired"
        assert store.read_lease(KEY_A)["owner"] == "w1"
        assert store.read_lease(KEY_B)["owner"] == "w2"

    def test_refresh_heartbeat(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        store.acquire_lease(KEY_A, "w1")
        age_lease(store, KEY_A, 100.0)
        assert store.read_lease(KEY_A)["age_s"] > 90.0
        # Non-owners cannot heartbeat someone else's claim.
        assert not store.refresh_lease(KEY_A, "w2")
        assert store.read_lease(KEY_A)["age_s"] > 90.0
        assert store.refresh_lease(KEY_A, "w1")
        assert store.read_lease(KEY_A)["age_s"] < 10.0

    def test_expired_lease_reclaimed(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        store.acquire_lease(KEY_A, "w1")
        age_lease(store, KEY_A, 100.0)
        assert store.acquire_lease(KEY_A, "w2", ttl_s=50.0) == "reclaimed"
        assert store.read_lease(KEY_A)["owner"] == "w2"
        # The dead owner's release must not destroy the reclaimer's lease.
        assert not store.release_lease(KEY_A, "w1")
        assert store.read_lease(KEY_A)["owner"] == "w2"

    def test_live_lease_not_reclaimed(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        store.acquire_lease(KEY_A, "w1")
        assert store.acquire_lease(KEY_A, "w2", ttl_s=3600.0) is None
        assert store.read_lease(KEY_A)["owner"] == "w1"

    def test_half_written_lease_blocks_then_expires(self, tmp_path):
        # A worker killed between the exclusive create and the body write
        # leaves an empty lease: an anonymous claim that still blocks
        # until its TTL passes, then is reclaimed like any other.
        store = SweepStore(tmp_path / "s")
        store.lease_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path(KEY_A).touch()
        assert store.read_lease(KEY_A)["owner"] is None
        assert store.acquire_lease(KEY_A, "w2", ttl_s=3600.0) is None
        age_lease(store, KEY_A, 100.0)
        assert store.acquire_lease(KEY_A, "w2", ttl_s=50.0) == "reclaimed"

    def test_concurrent_claims_exactly_one_winner(self, tmp_path):
        # The acceptance bar for the claim protocol: any number of racing
        # claimers, exactly one O_CREAT|O_EXCL winner per key.
        for round_index in range(3):
            key = f"{round_index}" * 64
            with ThreadPoolExecutor(max_workers=8) as pool:
                claims = list(
                    pool.map(
                        lambda owner: SweepStore(tmp_path / "s").acquire_lease(
                            key, owner
                        ),
                        [f"w{i}" for i in range(8)],
                    )
                )
            assert claims.count("acquired") == 1
            assert claims.count(None) == 7

    def test_concurrent_reclaims_exactly_one_winner(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        store.acquire_lease(KEY_A, "dead")
        age_lease(store, KEY_A, 100.0)
        with ThreadPoolExecutor(max_workers=8) as pool:
            claims = list(
                pool.map(
                    lambda owner: SweepStore(tmp_path / "s").acquire_lease(
                        KEY_A, owner, ttl_s=50.0
                    ),
                    [f"w{i}" for i in range(8)],
                )
            )
        assert claims.count("reclaimed") == 1
        winner = store.read_lease(KEY_A)["owner"]
        assert winner.startswith("w")

    def test_stats_count_active_leases(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        assert store.stats().leases == 0
        store.acquire_lease(KEY_A, "w1")
        stats = store.stats()
        assert stats.leases == 1
        assert "1 active lease" in stats.describe()
        store.release_lease(KEY_A, "w1")
        assert store.stats().leases == 0

    def test_clear_removes_leases(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        store.acquire_lease(KEY_A, "w1")
        store.clear()
        assert store.read_lease(KEY_A) is None
        assert not store.lease_dir.exists()

    def test_missing_keys_preserves_order(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        store.put(KEY_B, {"v": 1})
        assert list(store.missing_keys([KEY_A, KEY_B, "c" * 64])) == [
            KEY_A,
            "c" * 64,
        ]

    def test_leases_invisible_to_records_and_compaction(self, tmp_path):
        # Lease files are never records: iteration, len, and compaction
        # must not touch leases/ even while claims are outstanding.
        store = SweepStore(tmp_path / "s")
        store.put(KEY_A, {"v": 1})
        store.acquire_lease(KEY_B, "w1")
        assert len(store) == 1
        assert [r["key"] for r in store.records()] == [KEY_A]
        report = store.compact()
        assert report.sealed == 1 and report.skipped == 0
        assert store.read_lease(KEY_B)["owner"] == "w1"


class TestSigkilledWorker:
    def test_lease_of_sigkilled_holder_survives_then_reclaims(self, tmp_path):
        # A real SIGKILLed process: its lease file stays behind (nothing
        # releases it), blocks until the TTL passes, then is reclaimed.
        src = str(Path(repro.__file__).parents[1])
        code = (
            "import sys, time\n"
            "from repro.sweeps.store import SweepStore\n"
            "store = SweepStore(sys.argv[1])\n"
            "assert store.acquire_lease(sys.argv[2], 'victim') == 'acquired'\n"
            "print('HELD', flush=True)\n"
            "time.sleep(120)\n"
        )
        env = {**os.environ, "PYTHONPATH": src + os.pathsep + os.environ.get("PYTHONPATH", "")}
        proc = subprocess.Popen(
            [sys.executable, "-c", code, str(tmp_path / "s"), KEY_A],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "HELD"
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        store = SweepStore(tmp_path / "s")
        assert store.read_lease(KEY_A)["owner"] == "victim"
        assert store.acquire_lease(KEY_A, "heir", ttl_s=3600.0) is None
        age_lease(store, KEY_A, 100.0)
        assert store.acquire_lease(KEY_A, "heir", ttl_s=50.0) == "reclaimed"

    def test_replacement_worker_reclaims_and_completes(self, tmp_path):
        # Crash/restart interleaving: a run that died after 2 records,
        # leaving an expired lease on a third key, is finished by a
        # replacement worker -- byte-identically to an uninterrupted run.
        grid = tiny_grid()
        reference = run_sweep(grid, SweepStore(tmp_path / "ref"))

        store = SweepStore(tmp_path / "s")
        run_sweep(grid, store, limit=2)
        plan = plan_sweep(grid)
        assert store.acquire_lease(plan.keys[2], "crashed") == "acquired"
        age_lease(store, plan.keys[2], 3600.0)

        report = run_worker(grid, store, owner="heir", ttl_s=60.0)
        assert report.computed == grid.size - 2
        assert report.resumed == 2
        assert report.reclaimed == 1
        assert store_digest(tmp_path / "ref") == store_digest(tmp_path / "s")
        assert not store.lease_dir.exists()


class TestWorkerByteIdentity:
    def test_one_worker_matches_run_sweep(self, tmp_path):
        grid = tiny_grid()
        run_sweep(grid, SweepStore(tmp_path / "ref"))
        report = run_worker(grid, SweepStore(tmp_path / "w"))
        assert isinstance(report, WorkerReport)
        assert report.computed == grid.size
        assert report.resumed == 0
        assert store_digest(tmp_path / "ref") == store_digest(tmp_path / "w")

    def test_two_spawned_workers_match_run_sweep(self, tmp_path):
        # The acceptance bar: N claim-loop workers produce a store
        # byte-identical to the single-process run, down to the CSV.
        grid = tiny_grid()
        reference = run_sweep(grid, SweepStore(tmp_path / "ref"))
        report = run_distributed(grid, SweepStore(tmp_path / "d"), workers=2)
        assert report.computed == grid.size
        assert report.resumed == 0
        assert report.records == reference.records
        assert store_digest(tmp_path / "ref") == store_digest(tmp_path / "d")
        ref_csv = ResultTable.from_store(SweepStore(tmp_path / "ref")).to_csv()
        dist_csv = ResultTable.from_store(SweepStore(tmp_path / "d")).to_csv()
        assert ref_csv == dist_csv

    def test_run_sweep_distributed_flag(self, tmp_path):
        grid = tiny_grid()
        reference = run_sweep(grid, SweepStore(tmp_path / "ref"))
        report = run_sweep(
            grid, SweepStore(tmp_path / "d"), distributed=True, workers=2
        )
        assert report.records == reference.records
        assert store_digest(tmp_path / "ref") == store_digest(tmp_path / "d")

    def test_distributed_requires_store(self):
        with pytest.raises(ValueError, match="requires a store"):
            run_sweep(tiny_grid(), None, distributed=True, workers=2)

    def test_workers_joining_a_finished_store_resume_everything(self, tmp_path):
        grid = tiny_grid()
        store = SweepStore(tmp_path / "s")
        run_sweep(grid, store)
        report = run_worker(grid, store)
        assert report.computed == 0
        assert report.resumed == grid.size
        assert report.summary_line.startswith("RESUME computed=0 resumed=4 ")

    def test_sealing_worker_matches_loose_analysis(self, tmp_path):
        grid = tiny_grid()
        run_sweep(grid, SweepStore(tmp_path / "ref"))
        store = SweepStore(tmp_path / "s")
        run_worker(grid, store, seal=True)
        stats = SweepStore(tmp_path / "s").stats()
        assert stats.sealed == grid.size and stats.loose == 0
        ref_csv = ResultTable.from_store(SweepStore(tmp_path / "ref")).to_csv()
        sealed_csv = ResultTable.from_store(SweepStore(tmp_path / "s")).to_csv()
        assert ref_csv == sealed_csv

    def test_worker_sees_records_sealed_by_a_peer(self, tmp_path):
        # A worker whose SweepStore instance cached its manifest before a
        # peer compacted (--seal deletes sealed loose files) must reload
        # and resume those records, not re-evaluate the whole grid.
        grid = tiny_grid()
        store = SweepStore(tmp_path / "s")
        assert store.manifest() is None  # prime the stale (empty) cache
        peer = SweepStore(tmp_path / "s")
        run_sweep(grid, peer)
        assert peer.compact().sealed == grid.size  # loose files now gone
        report = run_worker(grid, store)
        assert report.computed == 0
        assert report.resumed == grid.size

    def test_worker_self_heals_corrupt_record(self, tmp_path):
        # Like --resume, a worker's initial scan treats a corrupt record
        # as missing and recomputes it in place.
        grid = tiny_grid()
        reference = run_sweep(grid, SweepStore(tmp_path / "ref"))
        store = SweepStore(tmp_path / "s")
        run_sweep(grid, store)
        plan = plan_sweep(grid)
        store.path(plan.keys[1]).write_text("{torn", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable record"):
            report = run_worker(grid, store)
        assert report.computed == 1
        assert store_digest(tmp_path / "ref") == store_digest(tmp_path / "s")

    def test_summary_line_contract(self, tmp_path):
        grid = tiny_grid()
        report = run_worker(grid, SweepStore(tmp_path / "s"), owner="me")
        line = report.summary_line
        # Shared grep contract first, worker fields strictly appended.
        assert line.startswith(
            f"RESUME computed={grid.size} resumed=0 "
            f"scenarios={grid.size} compilations=2 "
        )
        assert "owner=me" in line and "reclaimed=0" in line


class TestWorkerCLI:
    def test_worker_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        # The same grid the CLI flags below describe (the default preset's
        # noise axis narrowed to its base value).
        grid = tiny_grid(noise_axes={"include_readout": (False,)})
        run_sweep(grid, SweepStore(tmp_path / "ref"))
        assert main([
            "worker", str(tmp_path / "w"),
            "--benchmarks", "ADD",
            "--techniques", "parallax,graphine",
            "--spec-axis", "cz_error=0.002,0.004",
            "--noise-axis", "include_readout=false",
            "--shots", "120", "--seed", "5", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "RESUME computed=4 resumed=0 scenarios=4" in out
        assert store_digest(tmp_path / "ref") == store_digest(tmp_path / "w")

    def test_worker_bad_ttl_rejected(self):
        from repro.sweeps.__main__ import main

        with pytest.raises(SystemExit):
            main(["worker", "x", "--ttl", "0"])

    def test_run_workers_flag_requires_store(self):
        from repro.sweeps.__main__ import main

        with pytest.raises(SystemExit):
            main(["--workers", "2"])
