"""Binary columnar sidecars: round trips, corruption blast radius,
shard-parallel merge identity, and opportunistic mid-fleet merging.

The sidecar is purely an acceleration layer, so every test here pins one
invariant: its presence, absence, or corruption may change *speed* but
never a single byte of analysis output -- the CSV a store serves must be
identical whether each segment was read through the mmap'd sidecar, the
JSON columnar block, or the tolerant frame scan.
"""

import hashlib
import json
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import short_checksum
from repro.sweeps import ResultTable, SweepStore
from repro.sweeps import segments as seg


def record_for(i: int) -> tuple[str, dict]:
    """One synthetic but schema-complete sweep record."""
    key = hashlib.sha256(f"sidecar{i}".encode()).hexdigest()
    return key, {
        "scenario": {
            "benchmark": "ADD" if i % 2 else "QAOA",
            "technique": ("parallax", "graphine", "eldi")[i % 3],
            "shots": 100,
            "seed": 1000 + i,
            "spec_name": "quera_aquila",
            "spec_overrides": {"cz_error": 0.001 * (1 + i % 4)},
            "noise": {"include_readout": bool(i % 2)},
            "fingerprints": {"circuit": "c" * 8, "spec": "s" * 8, "config": "g" * 8},
        },
        "result": {
            "num_cz": 10 + i, "num_u3": 5, "num_ccz": 0, "num_swaps": 1,
            "num_moves": 2, "trap_change_events": 0, "num_layers": 4,
            "runtime_us": 12.5 + i,
        },
        "outcome": {
            "shots": 100, "successes": 90 - i, "gate_failures": 5,
            "movement_failures": 3, "decoherence_failures": 1,
            "readout_failures": 1 + i, "success_rate": (90 - i) / 100.0,
            "stderr": 0.03,
        },
        "analytic_success": 0.9 - 0.01 * i,
    }


def filled_store(directory, n=8) -> tuple[SweepStore, list[str]]:
    store = SweepStore(directory)
    keys = []
    for i in range(n):
        key, record = record_for(i)
        store.put(key, record)
        keys.append(key)
    return store, keys


def sidecar_files(directory):
    return sorted(Path(directory).glob("segment-*.cols"))


def segment_files(directory):
    return sorted(Path(directory).glob("segment-*.seg"))


def store_csv(directory) -> str:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return ResultTable.from_store(SweepStore(directory)).to_csv()


def packed_digest(directory) -> dict:
    """Name -> sha256 over every packed artifact (segments + sidecars)."""
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for pattern in (seg.SEGMENT_PATTERN, seg.SIDECAR_PATTERN)
        for path in sorted(Path(directory).glob(pattern))
    }


class TestSidecarRoundTrip:
    def test_seal_registers_sidecar_in_manifest(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        store.compact()
        [cols_path] = sidecar_files(tmp_path / "s")
        manifest = seg.load_manifest(tmp_path / "s")
        [(name, meta)] = manifest.segments.items()
        assert seg.sidecar_name(name) == cols_path.name
        blob = cols_path.read_bytes()
        assert meta.sidecar_length == len(blob)
        assert meta.sidecar_checksum == short_checksum(blob)
        assert blob.startswith(b"COLS reprocols 1\n")

    def test_sidecar_columns_match_json_block_exactly(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        store.compact()
        directory = tmp_path / "s"
        manifest = seg.load_manifest(directory)
        [(name, meta)] = manifest.segments.items()
        block = seg.read_segment_columns(directory / name, meta)
        side = seg.read_segment_sidecar(
            directory / seg.sidecar_name(name), meta
        )
        assert side is not None
        assert seg.materialize_column(side["keys"]) == block["keys"]
        assert side["names"] == block["names"]
        for column in block["names"]:
            assert (
                seg.materialize_column(side["columns"][column])
                == block["columns"][column]
            )

    def test_use_sidecars_false_skips_the_file(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        with seg.use_sidecars(False):
            store.compact()
        assert sidecar_files(tmp_path / "s") == []
        manifest = seg.load_manifest(tmp_path / "s")
        [(_, meta)] = manifest.segments.items()
        assert meta.sidecar_length == 0 and meta.sidecar_checksum == ""
        # Reads work exactly as pre-sidecar stores.
        assert len(ResultTable.from_store(store)) == 8

    def test_numeric_columns_are_zero_copy_views(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        store.compact()
        names, columns = SweepStore(tmp_path / "s").analysis_columns()
        by_name = dict(zip(names, columns))
        assert isinstance(by_name["analytic_success"], np.ndarray)
        assert by_name["analytic_success"].dtype == np.float64
        assert isinstance(by_name["shots"], np.ndarray)
        assert by_name["shots"].dtype == np.int64

    def test_env_var_disables_sidecars(self, tmp_path):
        script = (
            "import repro.sweeps.segments as s; print(s.sidecars_enabled())"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": "src", "REPRO_NO_SIDECARS": "1", "PATH": "/usr/bin:/bin"},
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "False"

    def test_resealing_same_records_is_byte_identical(self, tmp_path):
        for sub in ("a", "b"):
            store, _ = filled_store(tmp_path / sub)
            store.compact()
        digests = [packed_digest(tmp_path / sub) for sub in ("a", "b")]
        assert digests[0] == digests[1]
        assert any(name.endswith(".cols") for name in digests[0])


class TestCSVIdentity:
    def test_csv_identical_across_all_three_backends(self, tmp_path):
        filled_store(tmp_path / "loose")
        json_store, _ = filled_store(tmp_path / "jsononly")
        with seg.use_sidecars(False):
            json_store.compact()
        side_store, _ = filled_store(tmp_path / "sidecar")
        side_store.compact()
        csvs = {
            sub: store_csv(tmp_path / sub)
            for sub in ("loose", "jsononly", "sidecar")
        }
        assert csvs["loose"] == csvs["jsononly"] == csvs["sidecar"]
        assert csvs["loose"].count("\n") == 9  # header + 8 rows

    def test_csv_identical_for_mixed_sealed_plus_loose(self, tmp_path):
        filled_store(tmp_path / "loose")
        mixed, keys = filled_store(tmp_path / "mixed")
        mixed.compact(keys=keys[:5])
        assert store_csv(tmp_path / "mixed") == store_csv(tmp_path / "loose")

    def test_csv_identical_after_merge(self, tmp_path):
        filled_store(tmp_path / "loose")
        merged, keys = filled_store(tmp_path / "merged")
        for start in range(0, 8, 2):
            merged.compact(keys=keys[start : start + 2])
        merged.merge()
        assert store_csv(tmp_path / "merged") == store_csv(tmp_path / "loose")


class TestSidecarCorruption:
    """Truncated / bit-flipped / missing sidecars must degrade to the JSON
    block with one warning -- and never change a byte of output."""

    def _sealed(self, directory):
        store, _ = filled_store(directory)
        store.compact()
        return store_csv(directory)  # reference read via healthy sidecar

    def test_missing_sidecar_degrades_to_json_block(self, tmp_path):
        reference = self._sealed(tmp_path / "s")
        [cols] = sidecar_files(tmp_path / "s")
        cols.unlink()
        with pytest.warns(RuntimeWarning, match="sidecar"):
            table = ResultTable.from_store(SweepStore(tmp_path / "s"))
        assert table.to_csv() == reference

    def test_truncated_sidecar_degrades_to_json_block(self, tmp_path):
        reference = self._sealed(tmp_path / "s")
        [cols] = sidecar_files(tmp_path / "s")
        cols.write_bytes(cols.read_bytes()[:-16])
        with pytest.warns(RuntimeWarning, match="sidecar"):
            table = ResultTable.from_store(SweepStore(tmp_path / "s"))
        assert table.to_csv() == reference

    def test_bit_flipped_sidecar_degrades_to_json_block(self, tmp_path):
        reference = self._sealed(tmp_path / "s")
        [cols] = sidecar_files(tmp_path / "s")
        data = bytearray(cols.read_bytes())
        data[len(data) // 2] ^= 0x40
        cols.write_bytes(bytes(data))
        with pytest.warns(RuntimeWarning, match="sidecar"):
            table = ResultTable.from_store(SweepStore(tmp_path / "s"))
        assert table.to_csv() == reference

    def test_sidecar_warning_fires_once(self, tmp_path):
        self._sealed(tmp_path / "s")
        [cols] = sidecar_files(tmp_path / "s")
        cols.unlink()
        fresh = SweepStore(tmp_path / "s")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fresh.analysis_columns()
            fresh.analysis_columns()
        assert len([w for w in caught if "sidecar" in str(w.message)]) == 1

    def test_dead_sidecar_and_dead_block_fall_to_frame_scan(self, tmp_path):
        # Both acceleration rungs gone: the frame scan still serves every
        # intact record, with one warning per rung.
        reference_rows = sorted(self._sealed(tmp_path / "s").splitlines()[1:])
        [cols] = sidecar_files(tmp_path / "s")
        cols.write_bytes(b"COLS reprocols 1\ngarbage")
        [segment] = segment_files(tmp_path / "s")
        data = bytearray(segment.read_bytes())
        index = data.find(b'"names":')
        data[index + 2] ^= 0x01
        segment.write_bytes(bytes(data))
        with pytest.warns(RuntimeWarning) as caught:
            table = ResultTable.from_store(SweepStore(tmp_path / "s"))
        messages = [str(w.message) for w in caught]
        assert any("sidecar" in m for m in messages)
        assert any("columnar block" in m for m in messages)
        assert sorted(table.to_csv().splitlines()[1:]) == reference_rows

    def test_crash_during_sidecar_write_converges_on_retry(
        self, tmp_path, monkeypatch
    ):
        class Boom(RuntimeError):
            pass

        store, _ = filled_store(tmp_path / "s")
        real_write = seg.atomic_write_bytes

        def injected(path, blob, **kwargs):
            if str(path).endswith(".cols"):
                raise Boom("injected crash mid-sidecar-write")
            return real_write(path, blob, **kwargs)

        monkeypatch.setattr(seg, "atomic_write_bytes", injected)
        with pytest.raises(Boom):
            store.compact()
        monkeypatch.setattr(seg, "atomic_write_bytes", real_write)
        report = SweepStore(tmp_path / "s").compact()
        assert report.sealed == 8
        fresh = SweepStore(tmp_path / "s")
        assert len(list(fresh.records())) == 8
        [cols] = [
            p
            for p in sidecar_files(tmp_path / "s")
            if seg.sidecar_name(report.segment) == p.name
        ]
        assert cols.stat().st_size > 0


class TestParallelMerge:
    def _chunked_store(self, directory) -> SweepStore:
        store, keys = filled_store(directory)
        for start in range(0, 8, 2):
            store.compact(keys=keys[start : start + 2])
        return store

    def test_parallel_merge_byte_identical_to_serial(self, tmp_path):
        serial = self._chunked_store(tmp_path / "serial")
        parallel = self._chunked_store(tmp_path / "parallel")
        # target_records=2 forces 4 output chunks, so the pool genuinely
        # fans out instead of degenerating to one task.
        serial_report = serial.merge(target_records=2)
        parallel_report = parallel.merge(target_records=2, jobs=4)
        assert parallel_report.summary_line == serial_report.summary_line
        assert parallel_report.segments == 4
        assert packed_digest(tmp_path / "parallel") == packed_digest(
            tmp_path / "serial"
        )
        assert (
            SweepStore(tmp_path / "parallel").stats().summary_line
            == SweepStore(tmp_path / "serial").stats().summary_line
        )
        assert store_csv(tmp_path / "parallel") == store_csv(tmp_path / "serial")

    def test_broken_pool_falls_back_to_serial(self, tmp_path, monkeypatch):
        import concurrent.futures

        reference = self._chunked_store(tmp_path / "ref")
        reference.merge(target_records=2)
        store = self._chunked_store(tmp_path / "s")

        def refuse(*args, **kwargs):
            raise OSError("no process pools here")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", refuse
        )
        with pytest.warns(RuntimeWarning, match="parallel merge pool"):
            report = store.merge(target_records=2, jobs=4)
        assert report.segments == 4
        assert packed_digest(tmp_path / "s") == packed_digest(tmp_path / "ref")

    def test_merge_rejects_bad_jobs(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        with pytest.raises(ValueError, match="jobs"):
            store.merge(jobs=0)

    def test_merge_cli_jobs_flag(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        self._chunked_store(tmp_path / "s")
        assert main(["merge", str(tmp_path / "s"), "--jobs", "2"]) == 0
        assert "MERGE sealed=0 merged=8 segments=1" in capsys.readouterr().out


class TestOpportunisticMerge:
    def test_pending_deltas_tracks_the_log(self, tmp_path):
        store, keys = filled_store(tmp_path / "s")
        for start in range(0, 8, 2):
            store.compact(keys=keys[start : start + 2])
        pending = store.pending_deltas()
        assert pending == store.stats().deltas
        assert pending > 0
        assert SweepStore(tmp_path / "empty").pending_deltas() == 0

    def test_maybe_merge_only_fires_at_threshold(self, tmp_path):
        store, keys = filled_store(tmp_path / "s")
        for start in range(0, 8, 2):
            store.compact(keys=keys[start : start + 2])
        pending = store.pending_deltas()
        assert store.maybe_merge(pending + 1) is None
        report = store.maybe_merge(pending)
        assert report is not None and report.merged == 8
        assert store.pending_deltas() == 0
        assert store.maybe_merge(1) is None  # nothing pending anymore

    def test_maybe_merge_skips_while_lock_held(self, tmp_path):
        store, keys = filled_store(tmp_path / "s")
        store.compact(keys=keys[:4])
        store.compact(keys=keys[4:])
        (tmp_path / "s" / "COMPACT.lock").touch()
        assert store.maybe_merge(1) is None

    def test_maybe_merge_rejects_bad_threshold(self, tmp_path):
        with pytest.raises(ValueError, match="threshold"):
            SweepStore(tmp_path / "s").maybe_merge(0)

    def test_run_sweep_merge_every_requires_seal(self, tmp_path):
        from repro.sweeps import SweepGrid, run_sweep

        grid = SweepGrid(
            benchmarks=("ADD",), techniques=("parallax",), shots=50
        )
        with pytest.raises(ValueError, match="seal"):
            run_sweep(
                grid, SweepStore(tmp_path / "s"), seal=False, merge_every=2
            )
        with pytest.raises(ValueError, match="positive"):
            run_sweep(
                grid, SweepStore(tmp_path / "s"), seal=True, merge_every=0
            )

    def test_merge_every_worker_matches_plain_run(self, tmp_path):
        from repro.sweeps import SweepGrid, run_sweep
        from repro.sweeps.distributed import run_worker

        grid = SweepGrid(
            benchmarks=("ADD",),
            techniques=("parallax", "graphine"),
            spec_axes={"cz_error": (0.002, 0.004)},
            shots=120,
            base_seed=5,
        )
        reference = run_sweep(grid, SweepStore(tmp_path / "ref"))
        report = run_worker(
            grid,
            SweepStore(tmp_path / "w"),
            owner="m1",
            seal=True,
            merge_every=1,
        )
        assert report.computed == grid.size
        merged = SweepStore(tmp_path / "w")
        assert tuple(
            merged.get(r["key"]) for r in reference.records
        ) == reference.records
        assert store_csv(tmp_path / "w") == store_csv(tmp_path / "ref")
        # The opportunistic merge actually ran: generation advanced.
        assert merged.stats().generation >= 1

    def test_cli_merge_every_requires_seal(self, tmp_path):
        from repro.sweeps.__main__ import main

        with pytest.raises(SystemExit):
            main(
                [
                    "--preset", "smoke", "--store", str(tmp_path / "s"),
                    "--merge-every", "2",
                ]
            )
        with pytest.raises(SystemExit):
            main(
                [
                    "worker", str(tmp_path / "s"), "--preset", "smoke",
                    "--merge-every", "2",
                ]
            )


class TestStatsJSON:
    def test_stats_json_matches_summary_line(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        store, keys = filled_store(tmp_path / "s", n=6)
        store.compact(keys=keys[:4])
        assert main(["stats", str(tmp_path / "s"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = SweepStore(tmp_path / "s").stats()
        assert payload == stats.as_dict()
        for field, value in payload.items():
            assert f"{field}={value}" in stats.summary_line


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)


class TestSidecarProperties:
    @given(
        rows=st.integers(min_value=1, max_value=24),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_read_round_trip(self, tmp_path_factory, rows, data):
        keys = sorted(
            hashlib.sha256(f"prop{i}".encode()).hexdigest() for i in range(rows)
        )
        column_strategies = {
            "f": st.floats(allow_nan=False, allow_infinity=False),
            "i": st.integers(min_value=-(2**62), max_value=2**62),
            "b": st.booleans(),
            "s": st.text(max_size=12),
            "mixed": json_scalars,
        }
        names = []
        columns = {}
        for label, strategy in column_strategies.items():
            nullable = st.one_of(st.none(), strategy)
            columns[label] = data.draw(
                st.lists(nullable, min_size=rows, max_size=rows)
            )
            names.append(label)
        blob = seg.pack_sidecar(keys, names, columns)
        directory = tmp_path_factory.mktemp("sidecar")
        path = directory / "segment-000001.cols"
        path.write_bytes(blob)
        meta = seg.SegmentColumns(
            offset=0,
            length=0,
            checksum="",
            count=rows,
            sidecar_length=len(blob),
            sidecar_checksum=short_checksum(blob),
        )
        decoded = seg.read_segment_sidecar(path, meta)
        assert decoded is not None
        assert seg.materialize_column(decoded["keys"]) == keys
        assert decoded["names"] == names
        assert decoded["count"] == rows
        assert decoded["first_key"] == keys[0]
        assert decoded["last_key"] == keys[-1]
        for label in names:
            assert (
                seg.materialize_column(decoded["columns"][label])
                == columns[label]
            )
