"""Tests for repro.transpile.pipeline."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.matrices import circuit_unitary
from repro.transpile.pipeline import transpile


def equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    idx = np.unravel_index(np.abs(b).argmax(), b.shape)
    phase = a[idx] / b[idx]
    return np.allclose(a, phase * b, atol=atol)


class TestTranspile:
    def test_output_only_basis_gates(self):
        c = QuantumCircuit(3).h(0).ccx(0, 1, 2).swap(1, 2)
        out = transpile(c)
        assert set(g.name for g in out) <= {"u3", "cz"}

    def test_strips_barriers_and_measures(self):
        c = QuantumCircuit(2).h(0)
        c.add("barrier", (0,))
        c.add("measure", (0,))
        out = transpile(c)
        assert all(g.name in ("u3", "cz") for g in out)

    def test_keeps_structural_when_asked(self):
        c = QuantumCircuit(2).h(0)
        c.add("barrier", (0,))
        out = transpile(c, strip_structural=False)
        assert any(g.name == "barrier" for g in out)

    def test_unitary_preserved(self):
        c = QuantumCircuit(3)
        c.h(0).cx(0, 1).cswap(0, 1, 2).rz(2, 0.3)
        out = transpile(c)
        assert equal_up_to_phase(
            circuit_unitary(out.gates, 3),
            circuit_unitary(c.without({"barrier", "measure"}).gates, 3),
        )

    def test_no_optimize_mode(self):
        c = QuantumCircuit(1).h(0).h(0)
        unopt = transpile(c, optimize=False)
        opt = transpile(c, optimize=True)
        assert len(opt) < len(unopt)

    def test_name_carried_through(self):
        c = QuantumCircuit(2, name="payload").cz(0, 1)
        assert transpile(c).name == "payload"

    def test_idempotent_on_basis_circuits(self):
        c = QuantumCircuit(2).h(0).cx(0, 1)
        once = transpile(c)
        twice = transpile(once)
        assert once.count_ops() == twice.count_ops()

    def test_cz_count_is_paper_metric(self):
        # CZ count after transpilation is Parallax's reported CZ count.
        c = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        out = transpile(c)
        assert out.count_ops().get("cz", 0) == 0  # cancels entirely
