"""Tests for repro.utils.validation."""

import math

import pytest

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001, math.inf, math.nan])
    def test_rejects_bad(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("y", 0.0) == 0.0

    def test_accepts_positive(self):
        assert check_non_negative("y", 10) == 10

    @pytest.mark.parametrize("bad", [-1e-9, -5, math.inf, math.nan])
    def test_rejects_bad(self, bad):
        with pytest.raises(ValueError, match="y"):
            check_non_negative("y", bad)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.nan, math.inf])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", bad)


class TestCheckInRange:
    def test_accepts_bounds_inclusive(self):
        assert check_in_range("v", 1, 1, 5) == 1
        assert check_in_range("v", 5, 1, 5) == 5

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="v"):
            check_in_range("v", 6, 1, 5)

    def test_error_message_names_bounds(self):
        with pytest.raises(ValueError, match=r"\[1, 5\]"):
            check_in_range("v", 0, 1, 5)
