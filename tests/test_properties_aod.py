"""Stateful property-based tests of the AOD's hardware invariants.

A random sequence of assigns, releases, and row/column moves must never
leave the AOD with crossed lines, violated gaps, or inconsistent
atom-to-line bookkeeping -- exactly the hardware constraints Section II
builds Parallax around.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.hardware.aod import AOD, AODOrderError
from repro.hardware.spec import HardwareSpec

GAP = 1.0


class AODMachine(RuleBasedStateMachine):
    """Random walk over the AOD API, checking invariants after every step."""

    def __init__(self):
        super().__init__()
        spec = HardwareSpec(name="t", grid_rows=8, grid_cols=8, aod_rows=6, aod_cols=6)
        self.aod = AOD(spec, line_gap_um=GAP)
        self.next_qubit = 0

    # -- rules -------------------------------------------------------------

    @rule(row=st.integers(0, 5), col=st.integers(0, 5),
          x=st.floats(0, 100, allow_nan=False),
          y=st.floats(0, 100, allow_nan=False))
    def assign(self, row, col, x, y):
        qubit = self.next_qubit
        try:
            self.aod.assign_atom(qubit, row, col, x, y)
            self.next_qubit += 1
        except (AODOrderError, ValueError):
            pass  # rejected assignments must leave state untouched

    @precondition(lambda self: self.aod.atoms())
    @rule(data=st.data())
    def release(self, data):
        qubit = data.draw(st.sampled_from(self.aod.atoms()))
        self.aod.release_atom(qubit)

    @precondition(lambda self: any(~np.isnan(self.aod.row_y)))
    @rule(data=st.data(), y=st.floats(-50, 150, allow_nan=False))
    def move_row(self, data, y):
        live = [i for i in range(self.aod.num_rows) if not np.isnan(self.aod.row_y[i])]
        index = data.draw(st.sampled_from(live))
        try:
            self.aod.move_row(index, y)
        except AODOrderError:
            pass

    @precondition(lambda self: any(~np.isnan(self.aod.col_x)))
    @rule(data=st.data(), x=st.floats(-50, 150, allow_nan=False))
    def move_col(self, data, x):
        live = [i for i in range(self.aod.num_cols) if not np.isnan(self.aod.col_x[i])]
        index = data.draw(st.sampled_from(live))
        try:
            self.aod.move_col(index, x)
        except AODOrderError:
            pass

    # -- invariants -----------------------------------------------------------

    @invariant()
    def rows_strictly_ordered_with_gap(self):
        ys = self.aod.row_y[~np.isnan(self.aod.row_y)]
        # Assigned rows, in index order, must ascend with at least the gap.
        live = [y for y in self.aod.row_y if not np.isnan(y)]
        for a, b in zip(live, live[1:]):
            assert b - a >= GAP - 1e-9

    @invariant()
    def cols_strictly_ordered_with_gap(self):
        live = [x for x in self.aod.col_x if not np.isnan(x)]
        for a, b in zip(live, live[1:]):
            assert b - a >= GAP - 1e-9

    @invariant()
    def atom_bookkeeping_consistent(self):
        for qubit in self.aod.atoms():
            row, col = self.aod.atom_lines(qubit)
            assert qubit in self.aod.row_atoms[row]
            assert qubit in self.aod.col_atoms[col]
            assert not np.isnan(self.aod.row_y[row])
            assert not np.isnan(self.aod.col_x[col])

    @invariant()
    def no_orphan_line_memberships(self):
        listed = set()
        for atoms in self.aod.row_atoms:
            listed |= atoms
        assert listed == set(self.aod.atoms())


TestAODStateMachine = AODMachine.TestCase
TestAODStateMachine.settings = settings(max_examples=40, stateful_step_count=30,
                                        deadline=None)
