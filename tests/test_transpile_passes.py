"""Tests for repro.transpile.passes: peephole optimization."""

import math

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.circuit.matrices import circuit_unitary
from repro.transpile.basis import decompose_to_basis
from repro.transpile.passes import (
    cancel_cz_pairs,
    drop_identities,
    merge_one_qubit_runs,
    optimize_circuit,
)


def equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    idx = np.unravel_index(np.abs(b).argmax(), b.shape)
    phase = a[idx] / b[idx]
    return np.allclose(a, phase * b, atol=atol)


class TestMergeOneQubitRuns:
    def test_two_u3_merge_to_one(self):
        c = QuantumCircuit(1)
        c.u3(0, 0.1, 0.2, 0.3).u3(0, 0.4, 0.5, 0.6)
        merged = merge_one_qubit_runs(c)
        assert len(merged) == 1 and merged[0].name == "u3"
        assert equal_up_to_phase(
            circuit_unitary(merged.gates, 1), circuit_unitary(c.gates, 1)
        )

    def test_inverse_pair_vanishes(self):
        c = QuantumCircuit(1).h(0).h(0)
        assert len(merge_one_qubit_runs(c)) == 0

    def test_cz_blocks_merging(self):
        c = QuantumCircuit(2)
        c.h(0).cz(0, 1).h(0)
        merged = merge_one_qubit_runs(c)
        assert [g.name for g in merged] == ["u3", "cz", "u3"]

    def test_run_on_other_qubit_unaffected(self):
        c = QuantumCircuit(2)
        c.h(0).h(1).cz(0, 1)
        merged = merge_one_qubit_runs(c)
        assert sum(1 for g in merged if g.name == "u3") == 2

    def test_trailing_run_flushed(self):
        c = QuantumCircuit(1).h(0).s(0)
        merged = merge_one_qubit_runs(c)
        assert len(merged) == 1
        assert equal_up_to_phase(
            circuit_unitary(merged.gates, 1), circuit_unitary(c.gates, 1)
        )

    def test_barrier_flushes_run(self):
        c = QuantumCircuit(1)
        c.h(0)
        c.add("barrier", (0,))
        c.h(0)
        merged = merge_one_qubit_runs(c)
        assert [g.name for g in merged] == ["u3", "barrier", "u3"]


class TestCancelCzPairs:
    def test_adjacent_pair_cancels(self):
        c = QuantumCircuit(2).cz(0, 1).cz(0, 1)
        assert len(cancel_cz_pairs(c)) == 0

    def test_reversed_qubits_cancel(self):
        c = QuantumCircuit(2).cz(0, 1).cz(1, 0)
        assert len(cancel_cz_pairs(c)) == 0

    def test_intervening_gate_blocks(self):
        c = QuantumCircuit(2).cz(0, 1).h(0).cz(0, 1)
        assert len(cancel_cz_pairs(c)) == 3

    def test_intervening_gate_on_either_qubit_blocks(self):
        c = QuantumCircuit(2).cz(0, 1).h(1).cz(0, 1)
        assert len(cancel_cz_pairs(c)) == 3

    def test_spectator_gate_does_not_block(self):
        c = QuantumCircuit(3).cz(0, 1).h(2).cz(0, 1)
        out = cancel_cz_pairs(c)
        assert [g.name for g in out] == ["h"]

    def test_four_in_a_row_all_cancel(self):
        c = QuantumCircuit(2)
        for _ in range(4):
            c.cz(0, 1)
        assert len(cancel_cz_pairs(c)) == 0

    def test_three_in_a_row_leaves_one(self):
        c = QuantumCircuit(2)
        for _ in range(3):
            c.cz(0, 1)
        assert len(cancel_cz_pairs(c)) == 1

    def test_different_pairs_do_not_cancel(self):
        c = QuantumCircuit(3).cz(0, 1).cz(1, 2)
        assert len(cancel_cz_pairs(c)) == 2


class TestDropIdentities:
    def test_zero_u3_dropped(self):
        c = QuantumCircuit(1).u3(0, 0.0, 0.0, 0.0)
        assert len(drop_identities(c)) == 0

    def test_phase_only_u3_dropped(self):
        # u3(0, a, -a) is the identity up to global phase.
        c = QuantumCircuit(1).u3(0, 0.0, 0.7, -0.7)
        assert len(drop_identities(c)) == 0

    def test_nontrivial_u3_kept(self):
        c = QuantumCircuit(1).u3(0, 0.5, 0.0, 0.0)
        assert len(drop_identities(c)) == 1

    def test_cz_kept(self):
        c = QuantumCircuit(2).cz(0, 1)
        assert len(drop_identities(c)) == 1


class TestOptimizeCircuit:
    def test_fixed_point_reached(self):
        c = QuantumCircuit(2)
        c.h(0).h(0).cz(0, 1).cz(0, 1).u3(1, 0, 0, 0)
        basis = decompose_to_basis(c)
        out = optimize_circuit(basis)
        assert len(out) == 0

    def test_preserves_unitary(self):
        c = QuantumCircuit(3)
        c.h(0).cx(0, 1).t(1).cx(0, 1).h(0).ccx(0, 1, 2)
        basis = decompose_to_basis(c)
        out = optimize_circuit(basis)
        assert equal_up_to_phase(
            circuit_unitary(out.gates, 3), circuit_unitary(basis.gates, 3)
        )

    def test_never_increases_gate_count(self):
        c = QuantumCircuit(3)
        c.h(0).cx(0, 1).ccx(0, 1, 2).swap(1, 2).h(2)
        basis = decompose_to_basis(c)
        assert len(optimize_circuit(basis)) <= len(basis)

    def test_swap_then_swap_fully_cancels(self):
        c = QuantumCircuit(2).swap(0, 1).swap(0, 1)
        out = optimize_circuit(decompose_to_basis(c))
        assert len(out) == 0
