"""Tests for repro.experiments.scaling."""

import pytest

from repro.experiments.scaling import run_scaling


class TestRunScaling:
    @pytest.fixture(scope="class")
    def table(self):
        return run_scaling(qubit_counts=(4, 8, 16), steps=2)

    def test_row_per_qubit_count(self, table):
        assert table.column("qubits") == [4, 8, 16]

    def test_cz_grows_linearly(self, table):
        cz = table.column("cz_gates")
        # TFIM: steps * (q-1) * 2 CZs.
        assert cz == [2 * 2 * 3, 2 * 2 * 7, 2 * 2 * 15]

    def test_times_positive(self, table):
        for t in table.column("compile_s"):
            assert t >= 0.0

    def test_layers_grow_with_size(self, table):
        layers = table.column("layers")
        assert layers[-1] >= layers[0]

    def test_format_renders(self, table):
        assert "Compile-time scaling" in table.format()
