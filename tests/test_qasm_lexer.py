"""Tests for repro.qasm.lexer."""

import pytest

from repro.qasm.lexer import QasmSyntaxError, tokenize


def kinds(source: str) -> list[str]:
    return [t.kind for t in tokenize(source)]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)]


class TestTokenize:
    def test_keywords_recognized(self):
        tokens = list(tokenize("OPENQASM qreg creg gate measure barrier pi"))
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_identifier_vs_keyword(self):
        tokens = list(tokenize("qreg myreg"))
        assert tokens[0].kind == "keyword"
        assert tokens[1].kind == "id"

    def test_numbers(self):
        tokens = list(tokenize("42 3.14 .5 1e-3 2.5E+2"))
        assert [t.kind for t in tokens[:-1]] == ["int", "real", "real", "real", "real"]

    def test_string_strips_quotes(self):
        token = next(iter(tokenize('"qelib1.inc"')))
        assert token.kind == "string" and token.text == "qelib1.inc"

    def test_comments_skipped(self):
        assert texts("x // a comment\ny")[:-1] == ["x", "y"]

    def test_line_numbers_advance(self):
        tokens = list(tokenize("a\nb\nc"))
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_arrow_token(self):
        assert "arrow" in kinds("q -> c")

    def test_symbols(self):
        assert kinds("( ) [ ] { } ; , + - * / ^")[:-1] == ["sym"] * 13

    def test_eof_token_last(self):
        assert kinds("x")[-1] == "eof"

    def test_empty_source(self):
        assert kinds("") == ["eof"]

    def test_invalid_character_raises_with_line(self):
        with pytest.raises(QasmSyntaxError, match="line 2"):
            list(tokenize("ok\n@bad"))
