"""Tests for repro.experiments: runners produce paper-shaped outputs."""

import pytest

from repro.experiments import (
    ExperimentSettings,
    compile_one,
    prepared_circuit,
    prepared_layout,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_table1,
    run_table4,
)
from repro.experiments.common import clear_caches
from repro.hardware.spec import HardwareSpec

SMALL = ("ADD", "ADV", "HLF")


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestCommon:
    def test_prepared_circuit_cached(self):
        a = prepared_circuit("ADD")
        b = prepared_circuit("add")
        assert a is b

    def test_prepared_circuit_in_basis(self):
        c = prepared_circuit("HLF")
        assert set(g.name for g in c) <= {"u3", "cz"}

    def test_prepared_layout_shared(self):
        settings = ExperimentSettings()
        a = prepared_layout("ADD", settings)
        b = prepared_layout("ADD", settings)
        assert a is b

    def test_compile_one_memoized(self):
        spec = HardwareSpec.quera_aquila()
        a = compile_one("parallax", "ADV", spec)
        b = compile_one("parallax", "ADV", spec)
        assert a is b

    def test_compile_one_unknown_technique(self):
        with pytest.raises(ValueError, match="unknown technique"):
            compile_one("magic", "ADV", HardwareSpec.quera_aquila())


class TestFig9:
    def test_rows_and_headers(self):
        table = run_fig9(benchmarks=SMALL)
        assert len(table.rows) == len(SMALL)
        assert "parallax_cz" in table.headers

    def test_parallax_has_min_cz(self):
        table = run_fig9(benchmarks=SMALL)
        for row in table.rows:
            _, graphine, eldi, parallax, _ = row
            assert parallax <= graphine
            assert parallax <= eldi

    def test_percent_of_worst_le_100(self):
        table = run_fig9(benchmarks=SMALL)
        for pct in table.column("parallax_pct_of_worst"):
            assert 0 < pct <= 100

    def test_format_renders(self):
        text = run_fig9(benchmarks=SMALL).format()
        assert "Fig. 9" in text and "ADD" in text


class TestFig10:
    def test_probabilities_valid(self):
        table = run_fig10(benchmarks=SMALL)
        for row in table.rows:
            for p in row[1:4]:
                assert 0.0 <= p <= 1.0

    def test_parallax_best_on_most(self):
        # Paper: Parallax achieves the highest success on (nearly) all.
        table = run_fig10(benchmarks=SMALL)
        wins = sum(1 for row in table.rows if row[3] >= max(row[1], row[2]) * 0.95)
        assert wins >= len(SMALL) - 1

    def test_success_anticorrelates_with_cz(self):
        fig9 = run_fig9(benchmarks=SMALL)
        fig10 = run_fig10(benchmarks=SMALL)
        for row9, row10 in zip(fig9.rows, fig10.rows):
            if row9[1] > row9[3]:  # graphine ran more CZ than parallax
                assert row10[1] <= row10[3] + 1e-12


class TestTable4:
    def test_both_machines_reported(self):
        table = run_table4(benchmarks=("ADV",))
        assert "parallax_256" in table.headers
        assert "parallax_1225" in table.headers

    def test_runtimes_positive(self):
        table = run_table4(benchmarks=("ADV", "HLF"))
        for row in table.rows:
            assert all(v > 0 for v in row[1:])


class TestFig11:
    def test_series_shape(self):
        table = run_fig11(benchmarks=("ADV",))
        factors = table.column("factor")
        assert factors[0] == 1
        assert all(b >= a for a, b in zip(factors, factors[1:]))

    def test_time_decreases_with_factor(self):
        table = run_fig11(benchmarks=("ADV",))
        times = table.column("parallax_s")
        assert times[-1] < times[0]

    def test_adv_parallelizes_widely(self):
        # The paper runs as many as 121 ADV copies on the Atom machine.
        table = run_fig11(benchmarks=("ADV",))
        assert max(table.column("factor")) >= 25


class TestFig12:
    def test_home_return_wins_on_movement_heavy_circuit(self):
        # The paper's 40%-lower-runtime claim is driven by drift causing
        # failed moves and 100 us trap changes; QV is the heaviest mover.
        table = run_fig12(benchmarks=("QV",))
        no_home, home = table.rows[0][1], table.rows[0][2]
        assert home < no_home * 0.75

    def test_home_return_never_catastrophic_on_light_circuits(self):
        # On light circuits the return trip costs only the (tiny) transport
        # time, so home-return stays within a few percent.
        table = run_fig12(benchmarks=SMALL)
        for row in table.rows:
            no_home, home = row[1], row[2]
            assert home <= no_home * 1.5

    def test_headers(self):
        table = run_fig12(benchmarks=("ADV",))
        assert table.headers[1] == "no_home_us"


class TestFig13:
    def test_all_counts_reported(self):
        table = run_fig13(benchmarks=("ADV",), aod_counts=(1, 5, 20))
        assert table.headers == ("benchmark", "aod_1", "aod_5", "aod_20")
        assert all(v > 0 for v in table.rows[0][1:])


class TestTable1:
    def test_parallax_has_all_capabilities(self):
        table = run_table1()
        row = next(r for r in table.rows if r[0] == "parallax")
        assert all(v == "yes" for v in row[1:])

    def test_only_parallax_has_parallel_movements(self):
        table = run_table1()
        for row in table.rows:
            if row[0] != "parallax":
                assert row[5] == "no"

    def test_matrix_matches_implementations(self):
        # Consistency with the codebase: Graphine has custom layout but no
        # movement; ELDI has neither.
        table = run_table1()
        by_name = {r[0]: r for r in table.rows}
        assert by_name["graphine"][2] == "yes"  # custom layout
        assert by_name["graphine"][3] == "no"  # no movement
        assert by_name["eldi"][2] == "no"
