"""Tests for repro.utils.profiling."""

import time

from repro.utils.profiling import PhaseTimer


class TestPhaseTimer:
    def test_records_elapsed_time(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            time.sleep(0.01)
        assert timer.totals()["work"] >= 0.01

    def test_accumulates_across_entries(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("loop"):
                pass
        assert timer.counts()["loop"] == 3

    def test_multiple_phases_tracked_separately(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.totals()) == {"a", "b"}

    def test_exception_still_records(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert "boom" in timer.totals()

    def test_report_contains_phase_names(self):
        timer = PhaseTimer()
        with timer.phase("placement"):
            pass
        assert "placement" in timer.report()

    def test_empty_report(self):
        assert "no phases" in PhaseTimer().report()
