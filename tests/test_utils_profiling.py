"""Tests for repro.utils.profiling."""

import time

from repro.utils.profiling import PhaseTimer, format_phase_totals


class TestPhaseTimer:
    def test_records_elapsed_time(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            time.sleep(0.01)
        assert timer.totals()["work"] >= 0.01

    def test_accumulates_across_entries(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("loop"):
                pass
        assert timer.counts()["loop"] == 3

    def test_multiple_phases_tracked_separately(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert set(timer.totals()) == {"a", "b"}

    def test_exception_still_records(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert "boom" in timer.totals()

    def test_report_contains_phase_names(self):
        timer = PhaseTimer()
        with timer.phase("placement"):
            pass
        assert "placement" in timer.report()

    def test_empty_report(self):
        assert "no phases" in PhaseTimer().report()


class TestMerge:
    def test_merge_accumulates_totals(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        timer.merge({"a": 1.0, "b": 2.0})
        totals = timer.totals()
        assert totals["a"] >= 1.0
        assert totals["b"] == 2.0
        assert timer.counts() == {"a": 2, "b": 1}

    def test_merge_with_counts(self):
        timer = PhaseTimer()
        timer.merge({"a": 1.0}, counts={"a": 5})
        timer.merge({"a": 0.5}, counts={"a": 2})
        assert timer.totals()["a"] == 1.5
        assert timer.counts()["a"] == 7

    def test_merge_empty_is_noop(self):
        timer = PhaseTimer()
        timer.merge({})
        assert timer.totals() == {}


class TestFormatPhaseTotals:
    def test_sorted_slowest_first(self):
        text = format_phase_totals({"fast": 0.1, "slow": 2.0})
        assert text.index("slow") < text.index("fast")

    def test_empty(self):
        assert "no phases" in format_phase_totals({})
