"""Tests for repro.circuit.dag."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG, circuit_layers


def simple_circuit() -> QuantumCircuit:
    # h(0); cz(0,1); h(1); cz(1,2)
    return QuantumCircuit(3).h(0).cz(0, 1).h(1).cz(1, 2)


class TestDependencyDAG:
    def test_initial_fronts(self):
        dag = DependencyDAG(simple_circuit())
        assert dag.front_gate(0) == 0  # h(0)
        assert dag.front_gate(1) == 1  # cz(0,1)
        assert dag.front_gate(2) == 3  # cz(1,2)

    def test_two_qubit_gate_not_ready_until_both_fronts(self):
        dag = DependencyDAG(simple_circuit())
        assert not dag.is_ready(1)  # cz(0,1) waits for h(0)
        dag.pop(0)
        assert dag.is_ready(1)

    def test_ready_front_gates_no_duplicates(self):
        c = QuantumCircuit(2).cz(0, 1)
        dag = DependencyDAG(c)
        assert dag.ready_front_gates() == [0]

    def test_pop_not_ready_raises(self):
        dag = DependencyDAG(simple_circuit())
        with pytest.raises(ValueError, match="not ready"):
            dag.pop(1)

    def test_full_drain_in_dependency_order(self):
        dag = DependencyDAG(simple_circuit())
        executed = []
        while not dag.done():
            ready = dag.ready_front_gates()
            assert ready, "live circuit must always have a ready gate"
            idx = ready[0]
            executed.append(idx)
            dag.pop(idx)
        assert executed == [0, 1, 2, 3]

    def test_num_remaining_tracks(self):
        dag = DependencyDAG(simple_circuit())
        assert dag.num_remaining == 4
        dag.pop(0)
        assert dag.num_remaining == 3

    def test_push_back_restores_front(self):
        dag = DependencyDAG(simple_circuit())
        dag.pop(0)
        dag.pop(1)
        dag.push_back(1)
        assert dag.front_gate(0) == 1
        assert dag.front_gate(1) == 1
        assert dag.is_ready(1)
        assert dag.num_remaining == 3

    def test_push_back_twice_raises(self):
        dag = DependencyDAG(simple_circuit())
        dag.pop(0)
        dag.pop(1)
        dag.push_back(1)
        with pytest.raises(ValueError, match="already pending"):
            dag.push_back(1)

    def test_barriers_and_measures_excluded(self):
        c = QuantumCircuit(2).h(0).add("barrier", (0,)).add("measure", (0,))
        dag = DependencyDAG(c)
        assert dag.num_remaining == 1

    def test_duplicate_gates_tracked_independently(self):
        c = QuantumCircuit(2).cz(0, 1).cz(0, 1)
        dag = DependencyDAG(c)
        dag.pop(0)
        assert dag.front_gate(0) == 1
        assert dag.is_ready(1)


class TestCircuitLayers:
    def test_parallel_gates_share_layer(self):
        c = QuantumCircuit(4).h(0).h(1).cz(2, 3)
        layers = circuit_layers(c)
        assert len(layers) == 1
        assert len(layers[0]) == 3

    def test_dependent_gates_stack(self):
        c = QuantumCircuit(2).h(0).cz(0, 1).h(1)
        layers = circuit_layers(c)
        assert [len(l) for l in layers] == [1, 1, 1]

    def test_disjoint_qubits_within_layer(self):
        c = QuantumCircuit(4).cz(0, 1).cz(2, 3).cz(1, 2)
        layers = circuit_layers(c)
        for layer in layers:
            seen = set()
            for gate in layer:
                assert not seen & set(gate.qubits)
                seen.update(gate.qubits)

    def test_fredkin_has_expected_layer_scale(self):
        # The paper's Fig. 1 Fredkin decomposition has 16 layers; our
        # optimizer produces a comparable-depth {u3, cz} circuit.
        from repro.transpile import transpile

        c = QuantumCircuit(3)
        c.cswap(0, 1, 2)
        layers = circuit_layers(transpile(c))
        assert 10 <= len(layers) <= 20

    def test_empty_circuit(self):
        assert circuit_layers(QuantumCircuit(3)) == []
