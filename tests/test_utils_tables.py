"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_headers_and_rows_present(self):
        out = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in out and "b" in out
        assert "1" in out and "4" in out

    def test_title_on_first_line(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_columns_align(self):
        out = format_table(["col", "other"], [["xxxxxx", 1], ["y", 22]])
        lines = out.splitlines()
        # all separator '|' characters line up
        pipe_positions = [line.index("|") for line in lines if "|" in line]
        assert len(set(pipe_positions)) == 1

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_small_floats_use_scientific(self):
        out = format_table(["p"], [[1.7e-24]])
        assert "e-24" in out

    def test_zero_renders_plainly(self):
        out = format_table(["p"], [[0.0]])
        assert "0" in out

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
