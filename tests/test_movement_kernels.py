"""Property tests: vectorized movement kernels vs the scalar reference.

The vectorized candidate-search kernels in :mod:`repro.core.movement` must
reproduce the retained scalar reference kernels *exactly* -- same violation
counts, same SLM flags, same chosen destination point bit for bit -- on
randomized machine states, because compilation results are hashed for the
seed-parity suites.  The scalar kernels double as the oracle here.
"""

import math

import numpy as np
import pytest

from repro.core.machine import MachineState
from repro.core.movement import MoveFailure, MovementEngine
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout
from repro.utils.kernels import reference_kernels_active, use_reference_kernels


def random_state(rng, num_qubits=None, spec=None):
    """A MachineState with random positions and random AOD membership.

    The AOD subset is filtered so pairwise x/y gaps respect the 1 um AOD
    line-gap constraint (random uniform picks would otherwise violate it
    at transfer time).
    """
    spec = spec or HardwareSpec.quera_aquila()
    n = num_qubits or int(rng.integers(4, 12))
    unit = rng.uniform(0.05, 0.95, size=(n, 2))
    layout = GraphineLayout(
        unit_positions=unit, interaction_radius_unit=0.15
    )
    state = MachineState(spec, layout)
    k = int(rng.integers(1, n))
    candidates = rng.permutation(n).tolist()
    aod: list[int] = []
    for q in candidates:
        x, y = state.positions[q]
        if all(
            abs(x - state.positions[p][0]) > 1.5
            and abs(y - state.positions[p][1]) > 1.5
            for p in aod
        ):
            aod.append(q)
        if len(aod) == k:
            break
    aod.sort()
    order_y = sorted(aod, key=lambda q: state.positions[q][1])
    order_x = sorted(aod, key=lambda q: state.positions[q][0])
    for q in aod:
        state.transfer_to_aod(q, order_y.index(q), order_x.index(q))
        state.atoms[q].home = state.positions[q].copy()
    return state, aod


class TestSeparationViolationsParity:
    def test_matches_scalar_on_random_states(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            state, aod = random_state(rng)
            engine = MovementEngine(state)
            for _ in range(8):
                point = np.array(
                    [rng.uniform(-5.0, 110.0), rng.uniform(-5.0, 110.0)]
                )
                ignore = tuple(
                    rng.choice(
                        state.num_qubits,
                        size=int(rng.integers(0, 3)),
                        replace=False,
                    ).tolist()
                )
                got = engine._separation_violations(point, ignore)
                want = engine._separation_violations_scalar(point, ignore)
                assert got == want

    def test_candidate_metrics_match_per_point_scan(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            state, aod = random_state(rng)
            engine = MovementEngine(state)
            points = rng.uniform(0.0, 105.0, size=(16, 2))
            ignore = (aod[0],)
            aod_close, slm_close = engine._candidate_metrics(points, ignore)
            for k in range(len(points)):
                count, flag = engine._separation_violations_scalar(
                    points[k], ignore
                )
                assert int(aod_close[k]) == count
                assert bool(slm_close[k]) == flag


class TestDestinationParity:
    def test_find_destination_matches_scalar(self):
        rng = np.random.default_rng(13)
        checked = 0
        for _ in range(30):
            state, aod = random_state(rng)
            engine = MovementEngine(state)
            mover = int(rng.choice(aod))
            others = [q for q in range(state.num_qubits) if q != mover]
            target = int(rng.choice(others))
            try:
                want = engine._find_destination_scalar(mover, target)
            except MoveFailure:
                with pytest.raises(MoveFailure):
                    engine._find_destination(mover, target)
                continue
            got = engine._find_destination(mover, target)
            assert np.array_equal(got, want)  # bit-identical, not allclose
            checked += 1
        assert checked >= 10  # the sample must mostly exercise real picks

    def test_push_landing_matches_scalar(self):
        rng = np.random.default_rng(17)
        checked = 0
        for _ in range(30):
            state, aod = random_state(rng)
            engine = MovementEngine(state)
            qubit = int(rng.choice(aod))
            pos = state.positions[qubit].copy()
            away = pos + rng.uniform(-2.0, 2.0, size=2)
            direction = pos - away
            norm = math.hypot(direction[0], direction[1])
            if norm < 1e-6:
                continue
            base_angle = math.atan2(direction[1], direction[0])
            want = engine._push_landing_scalar(qubit, pos, away, base_angle)
            got = engine._push_landing(qubit, pos, away, base_angle)
            if want is None:
                assert got is None
                continue
            assert np.array_equal(got, want)
            checked += 1
        assert checked >= 10

    def test_reference_mode_routes_to_scalar_kernels(self):
        rng = np.random.default_rng(19)
        state, aod = random_state(rng, num_qubits=6)
        engine = MovementEngine(state)
        assert not reference_kernels_active()
        with use_reference_kernels():
            assert reference_kernels_active()
            mover = aod[0]
            target = next(q for q in range(state.num_qubits) if q != mover)
            ref = engine._find_destination(mover, target)
        vec = engine._find_destination(mover, target)
        assert np.array_equal(ref, vec)


class TestBoundsMargin:
    """The overhang margin is min(grid pitch, min separation) -- both modes.

    The seed allowed candidates to overhang the SLM grid by a full grid
    pitch; on sparse grids (pitch > separation) that admitted out-of-trap
    points no separation argument could justify.
    """

    def test_margin_capped_by_separation_on_sparse_grids(self):
        spec = HardwareSpec.quera_aquila()  # pitch 7.0 > min_sep 3.0
        assert spec.grid_pitch_um > spec.min_separation_um
        state, _ = random_state(np.random.default_rng(23), spec=spec)
        engine = MovementEngine(state)
        w, h = spec.extent_um
        sep = spec.min_separation_um
        inside = np.array([-sep + 1e-9, h / 2.0])
        beyond = np.array([-sep - 1e-9, h / 2.0])
        old_margin_point = np.array([w + spec.grid_pitch_um - 1e-9, h / 2.0])
        assert engine._bounds_ok(inside)
        assert not engine._bounds_ok(beyond)
        assert not engine._bounds_ok(old_margin_point)  # the seed allowed it

    def test_every_valid_spec_is_sparse(self):
        # pitch = 2*min_sep + padding with padding >= 0, so pitch always
        # exceeds min_sep: the margin cap engages on EVERY valid spec, and
        # the seed's full-pitch overhang was always the wrong bound.
        for spec in (HardwareSpec.quera_aquila(), HardwareSpec.atom_computing()):
            assert spec.grid_pitch_um >= 2.0 * spec.min_separation_um

    def test_bounds_mask_matches_bounds_ok(self):
        state, _ = random_state(np.random.default_rng(31))
        engine = MovementEngine(state)
        rng = np.random.default_rng(37)
        points = rng.uniform(-15.0, 120.0, size=(64, 2))
        mask = engine._bounds_mask(points)
        for k in range(len(points)):
            assert bool(mask[k]) == engine._bounds_ok(points[k])

    def test_reference_mode_applies_same_margin(self):
        # The bugfix applies to BOTH kernel modes: the reference mode is a
        # perf baseline, not a behavioral fork.
        state, _ = random_state(np.random.default_rng(41))
        engine = MovementEngine(state)
        w, h = state.spec.extent_um
        sep = state.spec.min_separation_um
        beyond = np.array([w + sep + 1e-9, h / 2.0])
        with use_reference_kernels():
            assert not engine._bounds_ok(beyond)
        assert not engine._bounds_ok(beyond)
