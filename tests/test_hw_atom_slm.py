"""Tests for repro.hardware.atom and repro.hardware.slm."""

import numpy as np
import pytest

from repro.hardware.atom import Atom, TrapType
from repro.hardware.slm import SLM
from repro.hardware.spec import HardwareSpec


class TestAtom:
    def test_defaults(self):
        atom = Atom(0, np.array([1.0, 2.0]))
        assert atom.trap is TrapType.SLM
        assert not atom.is_mobile
        np.testing.assert_allclose(atom.home, [1.0, 2.0])

    def test_home_defaults_to_position_copy(self):
        atom = Atom(0, np.array([1.0, 2.0]))
        atom.position[0] = 99.0
        assert atom.home[0] == 1.0

    def test_explicit_home(self):
        atom = Atom(0, np.array([1.0, 2.0]), home=np.array([0.0, 0.0]))
        np.testing.assert_allclose(atom.home, [0.0, 0.0])

    def test_bad_position_shape(self):
        with pytest.raises(ValueError, match="2-vector"):
            Atom(0, np.array([1.0, 2.0, 3.0]))

    def test_distance_to(self):
        a = Atom(0, np.array([0.0, 0.0]))
        b = Atom(1, np.array([3.0, 4.0]))
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_displace(self):
        atom = Atom(0, np.array([1.0, 1.0]))
        atom.displace(np.array([0.5, -0.5]))
        np.testing.assert_allclose(atom.position, [1.5, 0.5])

    def test_return_home_returns_distance(self):
        atom = Atom(0, np.array([0.0, 0.0]))
        atom.displace(np.array([3.0, 4.0]))
        assert atom.return_home() == pytest.approx(5.0)
        np.testing.assert_allclose(atom.position, [0.0, 0.0])

    def test_aod_mobility_flag(self):
        atom = Atom(0, np.array([0.0, 0.0]), trap=TrapType.AOD)
        assert atom.is_mobile


class TestSLM:
    @pytest.fixture
    def slm(self):
        return SLM(HardwareSpec.quera_aquila())

    def test_site_position_scaling(self, slm):
        pos = slm.site_position(2, 3)
        np.testing.assert_allclose(pos, [3 * slm.pitch, 2 * slm.pitch])

    def test_site_bounds_checked(self, slm):
        with pytest.raises(ValueError, match="outside"):
            slm.site_position(16, 0)

    def test_nearest_site_rounding(self, slm):
        point = np.array([slm.pitch * 2.4, slm.pitch * 0.6])
        assert slm.nearest_site(point) == (1, 2)

    def test_nearest_site_clamped(self, slm):
        assert slm.nearest_site(np.array([-100.0, 1e6])) == (15, 0)

    def test_place_and_occupancy(self, slm):
        slm.place(7, 1, 2)
        assert not slm.is_free(1, 2)
        assert slm.occupant(1, 2) == 7
        assert slm.num_occupied == 1

    def test_double_place_site_rejected(self, slm):
        slm.place(0, 0, 0)
        with pytest.raises(ValueError, match="already holds"):
            slm.place(1, 0, 0)

    def test_double_place_qubit_rejected(self, slm):
        slm.place(0, 0, 0)
        with pytest.raises(ValueError, match="already placed"):
            slm.place(0, 1, 1)

    def test_release(self, slm):
        slm.place(3, 2, 2)
        assert slm.release(2, 2) == 3
        assert slm.is_free(2, 2)

    def test_release_empty_rejected(self, slm):
        with pytest.raises(ValueError, match="empty"):
            slm.release(0, 0)

    def test_occupied_sites_is_copy(self, slm):
        slm.place(0, 0, 0)
        sites = slm.occupied_sites()
        sites.clear()
        assert slm.num_occupied == 1
