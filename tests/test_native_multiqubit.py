"""Tests for the native-CCZ extension (GEYSER-style composition).

The paper's background notes neutral atoms execute multi-qubit gates
directly and calls gate composition "orthogonal to Parallax"; this
extension keeps three-qubit gates as native CCZ pulses through
transpilation, scheduling, movement, and the noise model.
"""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.hardware.spec import HardwareSpec
from repro.noise import success_probability
from repro.sim import StateVector, simulate_circuit
from repro.transpile import transpile
from repro.transpile.basis import decompose_gate
from repro.circuit.gate import Gate


def toffoli_circuit():
    c = QuantumCircuit(3, "toffoli-chain")
    c.h(0).ccx(0, 1, 2).h(1).ccx(1, 2, 0).cswap(2, 0, 1)
    return c


@pytest.fixture(scope="module")
def spec():
    return HardwareSpec.quera_aquila()


class TestNativeDecomposition:
    def test_ccx_composes_to_single_ccz(self):
        out = decompose_gate(Gate("ccx", (0, 1, 2)), keep_ccz=True)
        assert sum(1 for g in out if g.name == "ccz") == 1
        assert sum(1 for g in out if g.name == "cz") == 0

    def test_cswap_composes_to_one_ccz_two_cz(self):
        out = decompose_gate(Gate("cswap", (0, 1, 2)), keep_ccz=True)
        assert sum(1 for g in out if g.name == "ccz") == 1
        assert sum(1 for g in out if g.name == "cz") == 2

    def test_ccz_passes_through(self):
        gate = Gate("ccz", (0, 1, 2))
        assert decompose_gate(gate, keep_ccz=True) == [gate]

    @pytest.mark.parametrize("name,qubits", [
        ("ccx", (0, 1, 2)), ("ccx", (2, 0, 1)),
        ("cswap", (0, 1, 2)), ("cswap", (1, 2, 0)), ("ccz", (0, 1, 2)),
    ])
    def test_native_path_unitary_equivalent(self, name, qubits):
        c = QuantumCircuit(3)
        c.add(name, qubits)
        a = simulate_circuit(transpile(c))
        b = simulate_circuit(transpile(c, native_multiqubit=True))
        assert a.fidelity_with(b) == pytest.approx(1.0)

    def test_whole_circuit_equivalent(self):
        c = toffoli_circuit()
        a = simulate_circuit(transpile(c))
        b = simulate_circuit(transpile(c, native_multiqubit=True))
        assert a.fidelity_with(b) == pytest.approx(1.0)

    def test_optimizer_preserves_ccz(self):
        out = transpile(toffoli_circuit(), native_multiqubit=True)
        assert out.count_ops().get("ccz", 0) == 3


class TestNativeCompilation:
    def test_scheduler_accepts_ccz(self, spec):
        config = ParallaxConfig(native_multiqubit=True)
        result = ParallaxCompiler(spec, config).compile(toffoli_circuit())
        assert result.num_ccz == 3
        assert result.num_swaps == 0

    def test_all_gates_scheduled(self, spec):
        config = ParallaxConfig(native_multiqubit=True)
        result = ParallaxCompiler(spec, config).compile(toffoli_circuit())
        total = sum(len(l.gates) for l in result.layers)
        assert total == result.num_cz + result.num_u3 + result.num_ccz

    def test_schedule_preserves_state(self, spec):
        config = ParallaxConfig(native_multiqubit=True)
        circuit = toffoli_circuit()
        result = ParallaxCompiler(spec, config).compile(circuit)
        flat = [g for layer in result.layers for g in layer.gates]
        scheduled = StateVector(3).run(flat)
        reference = simulate_circuit(transpile(circuit))
        assert scheduled.fidelity_with(reference) == pytest.approx(1.0)

    def test_fewer_entangling_ops_than_decomposed(self, spec):
        from repro.benchcircuits import grover_sat

        circuit = grover_sat()
        dec = ParallaxCompiler(spec).compile(circuit)
        nat = ParallaxCompiler(spec, ParallaxConfig(native_multiqubit=True)).compile(circuit)
        assert nat.num_cz + nat.num_ccz < dec.num_cz

    def test_success_gain_on_toffoli_heavy_circuit(self, spec):
        # The GEYSER-style benefit: 1 CCZ at 1.8% beats 6 CZ at 0.48% each.
        from repro.benchcircuits import grover_sat

        circuit = grover_sat()
        dec = ParallaxCompiler(spec).compile(circuit)
        nat = ParallaxCompiler(spec, ParallaxConfig(native_multiqubit=True)).compile(circuit)
        assert success_probability(nat) > success_probability(dec)

    def test_ccz_counts_in_noise_model(self, spec):
        from repro.core.result import CompilationResult

        base = CompilationResult(
            technique="parallax", circuit_name="t", num_qubits=3, spec=spec
        )
        with_ccz = CompilationResult(
            technique="parallax", circuit_name="t", num_qubits=3, spec=spec,
            num_ccz=10,
        )
        assert success_probability(with_ccz) == pytest.approx(
            (1 - spec.ccz_error) ** 10
        )
        assert success_probability(base) == pytest.approx(1.0)

    def test_ccz_layer_time(self, spec):
        # A layer containing a CCZ lasts at least the CCZ pulse time.
        config = ParallaxConfig(native_multiqubit=True)
        c = QuantumCircuit(3)
        c.add("ccz", (0, 1, 2))
        result = ParallaxCompiler(spec, config).compile(c)
        assert result.runtime_us >= spec.ccz_time_us
