"""Tests for the SABRE-style lookahead routing strategy."""

import numpy as np
import pytest

from repro.baselines.router import RouterConfig, SwapRouter
from repro.circuit.circuit import QuantumCircuit


def line_positions(n, spacing=1.0):
    return np.array([[i * spacing, 0.0] for i in range(n)], dtype=float)


def grid_positions(side, spacing=1.0):
    return np.array(
        [[c * spacing, r * spacing] for r in range(side) for c in range(side)],
        dtype=float,
    )


class TestRouterConfig:
    def test_defaults(self):
        config = RouterConfig()
        assert config.strategy == "shortest_path"

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            RouterConfig(strategy="magic")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(window=-1)

    def test_bad_decay_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(decay=1.5)


class TestLookaheadCorrectness:
    @pytest.fixture
    def config(self):
        return RouterConfig(strategy="lookahead")

    def test_adjacent_cz_free(self, config):
        router = SwapRouter(line_positions(3), 1.5, config=config)
        routed = router.route(QuantumCircuit(3).cz(0, 1))
        assert routed.num_swaps == 0

    def test_distant_cz_resolved(self, config):
        router = SwapRouter(line_positions(5), 1.2, config=config)
        routed = router.route(QuantumCircuit(5).cz(0, 4))
        assert routed.num_swaps >= 1
        # Every emitted CZ/SWAP is between connected atoms.
        for gate in routed.gates:
            if gate.num_qubits == 2:
                a, b = gate.qubits
                assert abs(a - b) == 1  # line topology neighbors

    def test_matches_shortest_path_swap_count_on_line(self, config):
        # On a line there is only one route; both strategies pay the same.
        for target in (2, 3, 4):
            sp = SwapRouter(line_positions(5), 1.2)
            la = SwapRouter(line_positions(5), 1.2, config=config)
            circuit = QuantumCircuit(5).cz(0, target)
            assert sp.route(circuit).num_swaps == la.route(circuit).num_swaps

    def test_final_mapping_is_permutation(self, config):
        router = SwapRouter(grid_positions(3), 1.2, config=config)
        c = QuantumCircuit(9).cz(0, 8).cz(2, 6).cz(1, 7)
        routed = router.route(c)
        values = list(routed.final_mapping.values())
        assert len(set(values)) == len(values)

    def test_lookahead_no_worse_on_repeated_pattern(self):
        # Repeating far pair + interleaved near pair: lookahead should not
        # do worse than independent shortest-path walks.
        c = QuantumCircuit(9)
        for _ in range(4):
            c.cz(0, 8)
            c.cz(0, 1)
        sp = SwapRouter(grid_positions(3), 1.2).route(c)
        la = SwapRouter(
            grid_positions(3), 1.2, config=RouterConfig(strategy="lookahead")
        ).route(c)
        assert la.num_swaps <= sp.num_swaps

    def test_swap_cap_enforced(self):
        config = RouterConfig(strategy="lookahead", max_swaps_per_gate=1)
        router = SwapRouter(line_positions(8), 1.2, config=config)
        from repro.baselines.router import RoutingError

        with pytest.raises(RoutingError, match="cap"):
            router.route(QuantumCircuit(8).cz(0, 7))


class TestLookaheadInBaselines:
    def test_eldi_with_lookahead_compiles(self):
        from repro.baselines.eldi import EldiCompiler, EldiConfig
        from repro.hardware.spec import HardwareSpec

        c = QuantumCircuit(8, "ring")
        for i in range(8):
            c.cz(i, (i + 1) % 8)
            c.h(i)
        spec = HardwareSpec.quera_aquila()
        base = EldiCompiler(spec).compile(c)
        smart = EldiCompiler(
            spec, EldiConfig(router=RouterConfig(strategy="lookahead"))
        ).compile(c)
        # Same base CZ count; lookahead may only reduce SWAP overhead.
        assert smart.num_cz - 3 * smart.num_swaps == base.num_cz - 3 * base.num_swaps
        assert smart.num_swaps <= base.num_swaps + 2
