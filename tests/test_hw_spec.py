"""Tests for repro.hardware.spec (Table II parameters)."""

import dataclasses
import math

import pytest

from repro.hardware.spec import HardwareSpec


class TestTableIIValues:
    """The spec encodes Table II of the paper verbatim."""

    def test_quera_machine_size(self):
        spec = HardwareSpec.quera_aquila()
        assert spec.num_sites == 256
        assert (spec.grid_rows, spec.grid_cols) == (16, 16)

    def test_atom_machine_size(self):
        spec = HardwareSpec.atom_computing()
        assert spec.num_sites == 1225
        assert (spec.grid_rows, spec.grid_cols) == (35, 35)

    def test_gate_errors(self):
        spec = HardwareSpec()
        assert spec.u3_error == pytest.approx(0.000127)
        assert spec.cz_error == pytest.approx(0.0048)
        assert spec.swap_error == pytest.approx(0.0143)

    def test_swap_error_is_roughly_three_cz(self):
        spec = HardwareSpec()
        three_cz = 1 - (1 - spec.cz_error) ** 3
        assert spec.swap_error == pytest.approx(three_cz, rel=0.01)

    def test_gate_times(self):
        spec = HardwareSpec()
        assert spec.u3_time_us == 2.0
        assert spec.cz_time_us == 0.8

    def test_coherence_times_in_us(self):
        spec = HardwareSpec()
        assert spec.t1_us == pytest.approx(4.0e6)
        assert spec.t2_us == pytest.approx(1.49e6)

    def test_movement_parameters(self):
        spec = HardwareSpec()
        assert spec.move_speed_um_per_us == 55.0
        assert spec.trap_switch_time_us == 100.0

    def test_loss_and_readout(self):
        spec = HardwareSpec()
        assert spec.atom_loss_rate == pytest.approx(0.007)
        assert spec.readout_error == pytest.approx(0.05)

    def test_default_aod_is_20(self):
        spec = HardwareSpec()
        assert spec.aod_rows == spec.aod_cols == 20

    def test_blockade_factor_is_2_5(self):
        assert HardwareSpec().blockade_factor == 2.5


class TestDerivedGeometry:
    def test_pitch_rule(self):
        spec = HardwareSpec()
        assert spec.grid_pitch_um == pytest.approx(
            2 * spec.min_separation_um + spec.grid_padding_um
        )

    def test_extent(self):
        spec = HardwareSpec.quera_aquila()
        w, h = spec.extent_um
        assert w == pytest.approx(15 * spec.grid_pitch_um)
        assert h == pytest.approx(15 * spec.grid_pitch_um)

    def test_longest_move_about_2us(self):
        # Section IV: "the longest possible move would take about 2 us" on
        # the 256-atom system.
        spec = HardwareSpec.quera_aquila()
        t = spec.move_time_us(spec.max_move_distance_um)
        assert 1.5 <= t <= 3.5

    def test_move_time_linear(self):
        spec = HardwareSpec()
        assert spec.move_time_us(110.0) == pytest.approx(2.0)
        assert spec.move_time_us(0.0) == 0.0

    def test_move_time_rejects_negative(self):
        with pytest.raises(ValueError):
            HardwareSpec().move_time_us(-1.0)

    def test_blockade_radius(self):
        spec = HardwareSpec()
        assert spec.blockade_radius_um(10.0) == pytest.approx(25.0)

    def test_with_aod_count(self):
        spec = HardwareSpec().with_aod_count(5)
        assert spec.aod_rows == spec.aod_cols == 5
        # Original untouched (frozen dataclass semantics).
        assert HardwareSpec().aod_rows == 20


class TestValidation:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            HardwareSpec().grid_rows = 5  # type: ignore[misc]

    @pytest.mark.parametrize("field,value", [
        ("grid_rows", 0), ("aod_rows", -1), ("min_separation_um", 0.0),
        ("cz_error", 1.5), ("u3_error", -0.1), ("move_speed_um_per_us", 0.0),
        ("t1_us", -2.0), ("readout_error", math.nan),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(HardwareSpec(), **{field: value})
