"""Tests for repro.cli: the command-line compiler driver."""

import pytest

from repro.cli import main
from repro.qasm.exporter import to_qasm
from repro.circuit.circuit import QuantumCircuit


@pytest.fixture
def qasm_file(tmp_path):
    circuit = QuantumCircuit(3)
    circuit.h(0).cx(0, 1).ccx(0, 1, 2)
    path = tmp_path / "circuit.qasm"
    path.write_text(to_qasm(circuit))
    return str(path)


class TestCli:
    def test_default_parallax(self, qasm_file, capsys):
        assert main([qasm_file]) == 0
        out = capsys.readouterr().out
        assert "parallax" in out
        assert "quera-aquila-256" in out

    def test_all_techniques(self, qasm_file, capsys):
        assert main([qasm_file, "--technique", "all"]) == 0
        out = capsys.readouterr().out
        for tech in ("parallax", "eldi", "graphine"):
            assert tech in out

    def test_atom_machine(self, qasm_file, capsys):
        assert main([qasm_file, "--machine", "atom"]) == 0
        assert "atom-computing-1225" in capsys.readouterr().out

    def test_shots_adds_columns(self, qasm_file, capsys):
        assert main([qasm_file, "--shots", "100"]) == 0
        out = capsys.readouterr().out
        assert "parallel_copies" in out
        assert "time_100_shots_s" in out

    def test_aod_count_flag(self, qasm_file, capsys):
        assert main([qasm_file, "--aod-count", "5"]) == 0

    def test_missing_file_errors(self, capsys):
        assert main(["/nonexistent/file.qasm"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_qasm_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.qasm"
        path.write_text("qreg q[1]; frobnicate q[0];")
        assert main([str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestCliBenchmarks:
    def test_named_benchmark(self, capsys):
        assert main(["--benchmark", "QAOA"]) == 0
        out = capsys.readouterr().out
        assert "benchmark QAOA" in out
        assert "parallax" in out

    def test_benchmark_case_insensitive(self, capsys):
        assert main(["--benchmark", "qaoa"]) == 0
        assert "benchmark QAOA" in capsys.readouterr().out

    def test_unknown_benchmark_errors(self, capsys):
        assert main(["--benchmark", "NOPE"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_file_and_benchmark_rejected(self, qasm_file, capsys):
        with pytest.raises(SystemExit):
            main([qasm_file, "--benchmark", "QAOA"])

    def test_neither_file_nor_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestCliBatch:
    def test_jobs_all_techniques(self, qasm_file, capsys):
        assert main([qasm_file, "--technique", "all", "--jobs", "3"]) == 0
        out = capsys.readouterr().out
        for tech in ("parallax", "eldi", "graphine"):
            assert tech in out

    def test_cache_dir_persists_and_hits(self, qasm_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([qasm_file, "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        import os

        assert any(name.endswith(".json") for name in os.listdir(cache_dir))
        assert main([qasm_file, "--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == first  # warm rerun, same table


class TestCliJson:
    def test_json_dump_round_trips(self, qasm_file, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "out.json")
        assert main([qasm_file, "--technique", "parallax", "--json", out_path]) == 0
        data = json.load(open(out_path))
        assert "parallax" in data
        from repro.core.serialize import result_from_dict

        result = result_from_dict(data["parallax"])
        assert result.num_swaps == 0
        assert "wrote JSON" in capsys.readouterr().out
