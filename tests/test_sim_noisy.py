"""Tests for repro.sim.noisy: Monte Carlo shot simulation."""

import pytest

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.noise.fidelity import NoiseModelConfig, success_probability
from repro.sim.noisy import NoisyShotSimulator


def make_result(**kwargs):
    defaults = dict(
        technique="parallax",
        circuit_name="t",
        num_qubits=5,
        spec=HardwareSpec.quera_aquila(),
        num_cz=50,
        num_u3=80,
        num_moves=10,
        trap_change_events=2,
        runtime_us=500.0,
    )
    defaults.update(kwargs)
    return CompilationResult(**defaults)


class TestNoisyShotSimulator:
    def test_converges_to_analytic(self):
        result = make_result()
        sim = NoisyShotSimulator(result, seed=0)
        outcome = sim.run(shots=40_000)
        analytic = success_probability(result)
        assert sim.analytic_success() == pytest.approx(analytic)
        assert outcome.success_rate == pytest.approx(analytic, abs=4 * outcome.stderr() + 1e-3)

    def test_channel_counts_sum(self):
        outcome = NoisyShotSimulator(make_result(), seed=1).run(shots=5000)
        total = (
            outcome.successes
            + outcome.gate_failures
            + outcome.movement_failures
            + outcome.decoherence_failures
            + outcome.readout_failures
        )
        assert total == outcome.shots

    def test_noiseless_circuit_always_succeeds(self):
        result = make_result(num_cz=0, num_u3=0, num_moves=0,
                             trap_change_events=0, runtime_us=0.0)
        outcome = NoisyShotSimulator(result, seed=2).run(shots=1000)
        assert outcome.success_rate == 1.0

    def test_gate_errors_dominate_for_deep_circuits(self):
        result = make_result(num_cz=2000, num_moves=0, trap_change_events=0,
                             runtime_us=10.0)
        outcome = NoisyShotSimulator(result, seed=3).run(shots=2000)
        assert outcome.gate_failures > outcome.movement_failures
        assert outcome.gate_failures > outcome.decoherence_failures

    def test_readout_channel_when_enabled(self):
        config = NoiseModelConfig(include_readout=True)
        result = make_result(num_cz=0, num_u3=0, num_moves=0,
                             trap_change_events=0, runtime_us=0.0, num_qubits=20)
        outcome = NoisyShotSimulator(result, config, seed=4).run(shots=4000)
        # (1 - 0.05)^20 ~ 0.358: readout failures must appear.
        assert outcome.readout_failures > 0
        assert outcome.success_rate == pytest.approx(0.358, abs=0.05)

    def test_seeded_determinism(self):
        result = make_result()
        a = NoisyShotSimulator(result, seed=7).run(1000)
        b = NoisyShotSimulator(result, seed=7).run(1000)
        assert a == b

    def test_invalid_shots_rejected(self):
        with pytest.raises(ValueError):
            NoisyShotSimulator(make_result()).run(0)

    def test_parallax_beats_baseline_empirically(self):
        # Monte Carlo version of Fig. 10: more CZ gates -> fewer successes.
        parallax = make_result(num_cz=100)
        baseline = make_result(num_cz=400, technique="graphine")
        p_out = NoisyShotSimulator(parallax, seed=8).run(20_000)
        b_out = NoisyShotSimulator(baseline, seed=9).run(20_000)
        assert p_out.success_rate > b_out.success_rate
