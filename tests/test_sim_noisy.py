"""Tests for repro.sim.noisy: Monte Carlo shot simulation."""

import math

import pytest

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.noise.fidelity import NoiseModelConfig, success_probability
from repro.sim.noisy import NoisyShotSimulator, ShotOutcome


def make_result(**kwargs):
    defaults = dict(
        technique="parallax",
        circuit_name="t",
        num_qubits=5,
        spec=HardwareSpec.quera_aquila(),
        num_cz=50,
        num_u3=80,
        num_moves=10,
        trap_change_events=2,
        runtime_us=500.0,
    )
    defaults.update(kwargs)
    return CompilationResult(**defaults)


class TestNoisyShotSimulator:
    def test_converges_to_analytic(self):
        result = make_result()
        sim = NoisyShotSimulator(result, seed=0)
        outcome = sim.run(shots=40_000)
        analytic = success_probability(result)
        assert sim.analytic_success() == pytest.approx(analytic)
        assert outcome.success_rate == pytest.approx(analytic, abs=4 * outcome.stderr() + 1e-3)

    def test_channel_counts_sum(self):
        outcome = NoisyShotSimulator(make_result(), seed=1).run(shots=5000)
        total = (
            outcome.successes
            + outcome.gate_failures
            + outcome.movement_failures
            + outcome.decoherence_failures
            + outcome.readout_failures
        )
        assert total == outcome.shots

    def test_noiseless_circuit_always_succeeds(self):
        result = make_result(num_cz=0, num_u3=0, num_moves=0,
                             trap_change_events=0, runtime_us=0.0)
        outcome = NoisyShotSimulator(result, seed=2).run(shots=1000)
        assert outcome.success_rate == 1.0

    def test_gate_errors_dominate_for_deep_circuits(self):
        result = make_result(num_cz=2000, num_moves=0, trap_change_events=0,
                             runtime_us=10.0)
        outcome = NoisyShotSimulator(result, seed=3).run(shots=2000)
        assert outcome.gate_failures > outcome.movement_failures
        assert outcome.gate_failures > outcome.decoherence_failures

    def test_readout_channel_when_enabled(self):
        config = NoiseModelConfig(include_readout=True)
        result = make_result(num_cz=0, num_u3=0, num_moves=0,
                             trap_change_events=0, runtime_us=0.0, num_qubits=20)
        outcome = NoisyShotSimulator(result, config, seed=4).run(shots=4000)
        # (1 - 0.05)^20 ~ 0.358: readout failures must appear.
        assert outcome.readout_failures > 0
        assert outcome.success_rate == pytest.approx(0.358, abs=0.05)

    def test_seeded_determinism(self):
        result = make_result()
        a = NoisyShotSimulator(result, seed=7).run(1000)
        b = NoisyShotSimulator(result, seed=7).run(1000)
        assert a == b

    def test_invalid_shots_rejected(self):
        with pytest.raises(ValueError):
            NoisyShotSimulator(make_result()).run(0)

    def test_parallax_beats_baseline_empirically(self):
        # Monte Carlo version of Fig. 10: more CZ gates -> fewer successes.
        parallax = make_result(num_cz=100)
        baseline = make_result(num_cz=400, technique="graphine")
        p_out = NoisyShotSimulator(parallax, seed=8).run(20_000)
        b_out = NoisyShotSimulator(baseline, seed=9).run(20_000)
        assert p_out.success_rate > b_out.success_rate


class TestSeedParity:
    """The vectorized array engine and the per-shot loop are one path."""

    def test_vectorized_matches_loop(self):
        result = make_result()
        vec = NoisyShotSimulator(result, seed=42).run_array(3000)
        loop = NoisyShotSimulator(result, seed=42).run_loop(3000)
        assert vec == loop

    @pytest.mark.parametrize(
        "config",
        [
            NoiseModelConfig(),
            NoiseModelConfig(include_readout=True),
            NoiseModelConfig(include_movement=False),
            NoiseModelConfig(include_decoherence=False),
            NoiseModelConfig(trap_switches_per_resolution=4),
        ],
    )
    def test_parity_across_configs(self, config):
        result = make_result(num_cz=500, num_moves=200, trap_change_events=8,
                             runtime_us=2e4)
        vec = NoisyShotSimulator(result, config, seed=11).run_array(1500)
        loop = NoisyShotSimulator(result, config, seed=11).run_loop(1500)
        assert vec == loop

    def test_loop_rejects_invalid_shots(self):
        with pytest.raises(ValueError):
            NoisyShotSimulator(make_result()).run_loop(0)

    def test_array_rejects_invalid_shots(self):
        with pytest.raises(ValueError):
            NoisyShotSimulator(make_result()).run_array(0)


class TestMultinomialFastPath:
    """`run` draws one multinomial; the array path is its statistical oracle."""

    def _channel_rates(self, outcome):
        return [
            outcome.gate_failures / outcome.shots,
            outcome.movement_failures / outcome.shots,
            outcome.decoherence_failures / outcome.shots,
            outcome.readout_failures / outcome.shots,
            outcome.success_rate,
        ]

    @pytest.mark.parametrize(
        "config",
        [
            NoiseModelConfig(),
            NoiseModelConfig(include_readout=True),
            NoiseModelConfig(include_movement=False),
            NoiseModelConfig(include_decoherence=False),
        ],
    )
    def test_statistical_parity_with_array_path(self, config):
        # The two engines consume the RNG differently, so parity is
        # statistical: every channel rate of both paths must sit within
        # 5 sigma of the same closed-form expectation.
        result = make_result(num_cz=500, num_moves=200, trap_change_events=8,
                             runtime_us=2e4)
        shots = 60_000
        multi = NoisyShotSimulator(result, config, seed=13).run(shots)
        array = NoisyShotSimulator(result, config, seed=14).run_array(shots)
        sim = NoisyShotSimulator(result, config, seed=0)
        expected = list(sim._pvals)
        for outcome in (multi, array):
            assert outcome.shots == shots
            for rate, p in zip(self._channel_rates(outcome), expected):
                sigma = math.sqrt(max(p * (1 - p), 1e-12) / shots)
                assert rate == pytest.approx(p, abs=5 * sigma + 1e-4)

    def test_run_is_multinomial_not_array(self):
        # One multinomial draw consumes a different RNG stream than the
        # (shots, 4) uniform array: after `run`, the next uniform draw
        # must differ from the array path's.
        result = make_result()
        a = NoisyShotSimulator(result, seed=3)
        b = NoisyShotSimulator(result, seed=3)
        a.run(1000)
        b.run_array(1000)
        assert a.rng.random() != b.rng.random()

    def test_category_probabilities_form_a_distribution(self):
        sim = NoisyShotSimulator(make_result(), NoiseModelConfig(include_readout=True))
        assert sim._pvals is not None
        assert all(p >= 0.0 for p in sim._pvals)
        assert sum(sim._pvals) == pytest.approx(1.0, abs=1e-12)
        # Success category is the channel product.
        assert sim._pvals[-1] == pytest.approx(sim.analytic_success(), rel=1e-12)

    def test_extreme_error_rates_stay_valid(self):
        result = make_result(num_cz=100_000, num_moves=50_000,
                             trap_change_events=1000, runtime_us=1e6)
        outcome = NoisyShotSimulator(result, seed=5).run(1000)
        assert outcome.successes == 0
        assert outcome.shots == 1000

    def test_counts_sum_to_shots(self):
        outcome = NoisyShotSimulator(make_result(), seed=6).run(123_456)
        total = (
            outcome.successes + outcome.gate_failures + outcome.movement_failures
            + outcome.decoherence_failures + outcome.readout_failures
        )
        assert total == 123_456


class TestChannelwiseAnalyticParity:
    """Empirical rates converge to success_probability channel by channel."""

    def _check(self, result, config, shots=40_000):
        sim = NoisyShotSimulator(result, config, seed=5)
        outcome = sim.run(shots)
        analytic = success_probability(result, config)
        assert sim.analytic_success() == pytest.approx(analytic)
        margin = 4 * outcome.stderr() + 1e-3
        assert outcome.success_rate == pytest.approx(analytic, abs=margin)
        return outcome

    def test_movement_only(self):
        result = make_result(num_cz=0, num_u3=0, num_moves=2000,
                             trap_change_events=100, runtime_us=0.0)
        config = NoiseModelConfig(include_decoherence=False)
        outcome = self._check(result, config)
        assert outcome.movement_failures > 0
        assert outcome.gate_failures == 0
        assert outcome.decoherence_failures == 0

    def test_readout_only(self):
        result = make_result(num_cz=0, num_u3=0, num_moves=0,
                             trap_change_events=0, runtime_us=0.0,
                             num_qubits=15)
        config = NoiseModelConfig(include_readout=True)
        outcome = self._check(result, config)
        assert outcome.readout_failures > 0
        assert outcome.gate_failures == 0
        assert outcome.movement_failures == 0

    def test_decoherence_only(self):
        result = make_result(num_cz=0, num_u3=0, num_moves=0,
                             trap_change_events=0, runtime_us=5e4,
                             num_qubits=10)
        config = NoiseModelConfig(include_movement=False)
        outcome = self._check(result, config)
        assert outcome.decoherence_failures > 0
        assert outcome.gate_failures == 0
        assert outcome.movement_failures == 0


class TestShotOutcomeStderr:
    def _outcome(self, shots, successes):
        return ShotOutcome(shots=shots, successes=successes,
                           gate_failures=shots - successes,
                           movement_failures=0, decoherence_failures=0,
                           readout_failures=0)

    def test_interior_rate_uses_binomial_formula(self):
        outcome = self._outcome(1000, 400)
        expected = math.sqrt(0.4 * 0.6 / 1000)
        assert outcome.stderr() == pytest.approx(expected)

    def test_all_successes_not_exact(self):
        # p == 1.0 at finite shots must not report zero uncertainty.
        outcome = self._outcome(1000, 1000)
        assert outcome.stderr() > 0.0
        assert outcome.stderr() == pytest.approx(0.5 / 1001, rel=1e-6)

    def test_zero_successes_not_exact(self):
        outcome = self._outcome(1000, 0)
        assert outcome.stderr() > 0.0
        assert outcome.stderr() == pytest.approx(0.5 / 1001, rel=1e-6)

    def test_boundary_stderr_shrinks_with_shots(self):
        small = self._outcome(100, 100).stderr()
        large = self._outcome(10_000, 10_000).stderr()
        assert large < small

    def test_wilson_interval_brackets_rate(self):
        outcome = self._outcome(500, 350)
        lo, hi = outcome.wilson_interval()
        assert lo < outcome.success_rate < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_wilson_rule_of_three_analogue(self):
        # Zero successes at z=1.96: upper bound ~ z^2/n, the Wilson analogue
        # of the rule-of-three 3/n bound.
        outcome = self._outcome(1000, 0)
        lo, hi = outcome.wilson_interval(z=1.96)
        assert lo == 0.0
        assert hi == pytest.approx(1.96**2 / (1000 + 1.96**2), rel=1e-6)

    def test_zero_shots_degenerate(self):
        outcome = self._outcome(0, 0)
        assert outcome.stderr() == 0.0
        assert outcome.wilson_interval() == (0.0, 1.0)
