"""Generational merging, sharded manifests, and range-lease workers.

The scale-envelope contract: merge folds any pile of small segments and
delta-log publications into one fresh generation without changing a single
record byte; a merge killed at *any* filesystem boundary leaves every key
reading identically and a re-merge converges; range leases change only how
work is claimed, never what is produced.
"""

import hashlib
import json
import warnings
from pathlib import Path

import pytest

from repro.sweeps import MergeReport, ResultTable, SweepStore, range_blocks
from repro.sweeps import segments as seg
from repro.sweeps.distributed import run_distributed, run_worker
from repro.sweeps.runner import plan_sweep
from repro.sweeps.store import SCHEMA_VERSION


def record_for(i: int) -> tuple[str, dict]:
    """One synthetic but schema-complete sweep record."""
    key = hashlib.sha256(f"mergerec{i}".encode()).hexdigest()
    return key, {
        "scenario": {
            "benchmark": "ADD" if i % 2 else "QAOA",
            "technique": ("parallax", "graphine", "eldi")[i % 3],
            "shots": 100,
            "seed": 1000 + i,
            "spec_name": "quera_aquila",
            "spec_overrides": {"cz_error": 0.001 * (1 + i % 4)},
            "noise": {"include_readout": bool(i % 2)},
            "fingerprints": {"circuit": "c" * 8, "spec": "s" * 8, "config": "g" * 8},
        },
        "result": {
            "num_cz": 10 + i, "num_u3": 5, "num_ccz": 0, "num_swaps": 1,
            "num_moves": 2, "trap_change_events": 0, "num_layers": 4,
            "runtime_us": 12.5 + i,
        },
        "outcome": {
            "shots": 100, "successes": 90 - i, "gate_failures": 5,
            "movement_failures": 3, "decoherence_failures": 1,
            "readout_failures": 1 + i, "success_rate": (90 - i) / 100.0,
            "stderr": 0.03,
        },
        "analytic_success": 0.9 - 0.01 * i,
    }


def generational_store(directory, n=12, chunks=3) -> tuple[SweepStore, list[str]]:
    """A store compacted in ``chunks`` passes: one checkpoint generation
    plus ``chunks - 1`` delta-log publications on top of it."""
    store = SweepStore(directory)
    keys = []
    for i in range(n):
        key, record = record_for(i)
        store.put(key, record)
        keys.append(key)
    size = (n + chunks - 1) // chunks
    for start in range(0, n, size):
        # Fresh instances, like the sealing workers that produced it.
        SweepStore(directory).compact(keys=keys[start : start + size])
    return SweepStore(directory), keys


def snapshot(directory) -> dict:
    """key -> record for every readable record, warnings suppressed."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return {r["key"]: r for r in SweepStore(directory).records()}


def segment_names(directory) -> list[str]:
    return sorted(p.name for p in Path(directory).glob("segment-*.seg"))


class TestMerge:
    def test_merge_round_trip_preserves_records_exactly(self, tmp_path):
        store, keys = generational_store(tmp_path / "s")
        before = snapshot(tmp_path / "s")
        csv_before = ResultTable.from_store(store).to_csv()
        assert len(segment_names(tmp_path / "s")) == 3

        report = SweepStore(tmp_path / "s").merge()
        assert report.sealed == 0
        assert report.merged == 12
        assert report.segments == 1
        assert report.generation == 2  # checkpoint was generation 1
        assert report.gc_segments == 3  # the superseded small segments

        assert segment_names(tmp_path / "s") == ["segment-g0002-000001.seg"]
        assert snapshot(tmp_path / "s") == before
        merged = SweepStore(tmp_path / "s")
        assert ResultTable.from_store(merged).to_csv() == csv_before
        for key in keys:
            assert merged.get(key) == before[key]
        stats = merged.stats()
        assert (stats.generation, stats.deltas, stats.segments) == (2, 0, 1)

    def test_merge_idempotent(self, tmp_path):
        generational_store(tmp_path / "s")
        SweepStore(tmp_path / "s").merge()
        path = tmp_path / "s" / segment_names(tmp_path / "s")[0]
        bytes_before = path.read_bytes()
        again = SweepStore(tmp_path / "s").merge()
        assert again.merged == 0 and again.segments == 0
        assert again.gc_segments == 0 and again.gc_manifest == 0
        assert again.generation == 2  # unchanged
        assert path.read_bytes() == bytes_before

    def test_merge_chunks_by_target_records(self, tmp_path):
        generational_store(tmp_path / "s")
        report = SweepStore(tmp_path / "s").merge(target_records=5)
        assert report.segments == 3  # ceil(12 / 5)
        names = segment_names(tmp_path / "s")
        assert len(names) == 3
        assert all(seg.segment_generation(name) == 2 for name in names)
        # Key order spans the segments globally, like a single-pass seal.
        ordered = [r["key"] for r in SweepStore(tmp_path / "s").records()]
        assert ordered == sorted(ordered)

    def test_merge_seals_loose_records_first(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        keys = []
        for i in range(6):
            key, record = record_for(i)
            store.put(key, record)
            keys.append(key)
        before = snapshot(tmp_path / "s")
        report = store.merge()
        assert report.sealed == 6 and report.merged == 6
        assert snapshot(tmp_path / "s") == before
        stats = SweepStore(tmp_path / "s").stats()
        assert (stats.loose, stats.sealed) == (0, 6)

    def test_merge_empty_store(self, tmp_path):
        report = SweepStore(tmp_path / "s").merge()
        assert report == MergeReport(
            sealed=0, merged=0, segments=0, generation=0,
            gc_segments=0, gc_manifest=0,
        )

    def test_merge_rejects_bad_target(self, tmp_path):
        with pytest.raises(ValueError, match="target_records"):
            SweepStore(tmp_path / "s").merge(target_records=-1)

    def test_merge_respects_held_lock(self, tmp_path):
        generational_store(tmp_path / "s")
        (tmp_path / "s" / "COMPACT.lock").write_text("12345", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="another compaction"):
            report = SweepStore(tmp_path / "s").merge()
        assert report.merged == 0
        assert len(segment_names(tmp_path / "s")) == 3  # nothing touched

    def test_merge_refuses_corrupt_root(self, tmp_path):
        generational_store(tmp_path / "s")
        (tmp_path / "s" / seg.MANIFEST_NAME).write_text("{broken", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="refusing to merge"):
            report = SweepStore(tmp_path / "s").merge()
        assert report.merged == 0 and report.gc_segments == 0
        assert len(segment_names(tmp_path / "s")) == 3  # GC never ran

    def test_merge_refuses_foreign_generation_root(self, tmp_path):
        # Merging over an older engine's manifest would garbage-collect
        # data this engine cannot re-read; refuse the whole store.
        store, _ = generational_store(tmp_path / "s")
        manifest = seg.load_manifest(tmp_path / "s")
        stale = seg.Manifest(
            entries=manifest.entries,
            segments=manifest.segments,
            schema_version=SCHEMA_VERSION,
            engine_version="0.0.1",
            generation=manifest.generation,
        )
        assert seg.write_manifest(tmp_path / "s", stale)
        with pytest.warns(RuntimeWarning, match="refusing to merge"):
            report = SweepStore(tmp_path / "s").merge()
        assert report.merged == 0
        assert len(segment_names(tmp_path / "s")) == 3

    def test_merge_gc_collects_orphans_without_rewrite(self, tmp_path):
        # A merge killed after its checkpoint leaves superseded files; the
        # re-merge has nothing to rewrite but still collects them.
        generational_store(tmp_path / "s")
        SweepStore(tmp_path / "s").merge()
        records = sorted(snapshot(tmp_path / "s").values(), key=lambda r: r["key"])
        assert seg.write_segment(tmp_path / "s", records) is not None  # orphan
        report = SweepStore(tmp_path / "s").merge()
        assert report.merged == 0 and report.gc_segments == 1
        assert segment_names(tmp_path / "s") == ["segment-g0002-000001.seg"]

    def test_summary_line_contract(self, tmp_path):
        generational_store(tmp_path / "s")
        line = SweepStore(tmp_path / "s").merge().summary_line
        assert line.startswith("MERGE sealed=0 merged=12 segments=1 ")
        assert "generation=2" in line and "gc_segments=3" in line


class TestShardedManifest:
    def test_publish_appends_delta_without_touching_root(self, tmp_path):
        # The O(delta) publication path: after the checkpoint, sealing new
        # records must append to the delta log, not rewrite the root.
        store = SweepStore(tmp_path / "s")
        keys = []
        for i in range(8):
            key, record = record_for(i)
            store.put(key, record)
            keys.append(key)
        SweepStore(tmp_path / "s").compact(keys=keys[:4])  # checkpoint
        root = tmp_path / "s" / seg.MANIFEST_NAME
        root_bytes = root.read_bytes()
        SweepStore(tmp_path / "s").compact(keys=keys[4:])  # delta append
        assert root.read_bytes() == root_bytes
        delta = tmp_path / "s" / seg.MANIFEST_DIR_NAME / seg.delta_log_name(1)
        assert delta.read_bytes().count(b"\n") == 1
        fresh = SweepStore(tmp_path / "s")
        assert fresh.stats().deltas == 1
        assert len(list(fresh.records())) == 8
        for key in keys:
            assert fresh.get(key) is not None

    def test_delta_replay_counts(self, tmp_path):
        store, _ = generational_store(tmp_path / "s", n=12, chunks=3)
        manifest = SweepStore(tmp_path / "s").manifest()
        assert manifest.manifest_version == seg.MANIFEST_VERSION
        assert manifest.generation == 1
        assert manifest.delta_records == 2
        assert len(manifest.entries) == 12

    def test_torn_delta_tail_reads_prefix_then_heals(self, tmp_path):
        store, keys = generational_store(tmp_path / "s")
        delta = tmp_path / "s" / seg.MANIFEST_DIR_NAME / seg.delta_log_name(1)
        with open(delta, "ab") as handle:
            handle.write(b"D 0123456789abcdef {torn-mid-app")  # no newline
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="torn"):
            assert len(list(fresh.records())) == 12  # intact prefix survives
        # The next publication repairs the framing: the torn bytes become
        # one skippable bad line and the new segment lands after them.
        key, record = record_for(100)
        later = SweepStore(tmp_path / "s")
        later.put(key, record)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            later.compact()
            healed = SweepStore(tmp_path / "s")
            assert len(list(healed.records())) == 13
            assert healed.get(key) is not None

    def test_corrupt_delta_line_drops_only_that_publication(self, tmp_path):
        generational_store(tmp_path / "s")
        delta = tmp_path / "s" / seg.MANIFEST_DIR_NAME / seg.delta_log_name(1)
        lines = delta.read_bytes().split(b"\n")
        lines[0] = lines[0][:-10] + b"X" * 10  # damage the first line only
        delta.write_bytes(b"\n".join(lines))
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="delta"):
            kept = list(fresh.records())
        # The checkpointed chunk and the intact second publication survive.
        assert 0 < len(kept) < 12
        assert fresh.manifest().delta_records == 1

    def test_corrupt_shard_drops_only_that_shards_lookups(self, tmp_path):
        _, keys = generational_store(tmp_path / "s")
        SweepStore(tmp_path / "s").merge()
        manifest_dir = tmp_path / "s" / seg.MANIFEST_DIR_NAME
        shards = sorted(manifest_dir.glob("shard-*.json"))
        assert len(shards) > 1  # sha256 keys spread over several shards
        shards[0].write_bytes(b"{damaged")
        sid = shards[0].stem.rsplit("-", 1)[1]
        dropped = [k for k in keys if seg.shard_id(k) == sid]
        assert dropped  # the damaged shard indexed someone
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="shard"):
            first = fresh.get(keys[0])
        assert (first is None) == (keys[0] in dropped)
        for key in keys[1:]:
            assert (fresh.get(key) is None) == (key in dropped)

    def test_v1_root_loads_read_only(self, tmp_path):
        store, keys = v1_store(tmp_path / "s")
        manifest = store.manifest()
        assert manifest.manifest_version == 1
        assert len(manifest.entries) == 6
        assert len(list(store.records())) == 6
        assert store.get(keys[0]) is not None

    def test_v1_root_migrates_in_one_merge(self, tmp_path):
        store, keys = v1_store(tmp_path / "s")
        before = snapshot(tmp_path / "s")
        report = store.merge()
        assert report.merged == 6
        migrated = SweepStore(tmp_path / "s")
        assert migrated.manifest().manifest_version == seg.MANIFEST_VERSION
        assert migrated.manifest().generation == report.generation
        assert snapshot(tmp_path / "s") == before
        names = segment_names(tmp_path / "s")
        assert all(seg.segment_generation(n) == report.generation for n in names)

    def test_unsupported_manifest_version_warns(self, tmp_path):
        store, _ = generational_store(tmp_path / "s")
        root = tmp_path / "s" / seg.MANIFEST_NAME
        data = json.loads(root.read_text(encoding="utf-8"))
        data["manifest_version"] = 99
        root.write_text(json.dumps(data), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unsupported version"):
            assert list(SweepStore(tmp_path / "s").records()) == []

    def test_shard_id_is_total(self):
        for key in ("0" * 64, "f" * 64, "not-hex-at-all", ""):
            assert seg.shard_id(key) in seg.SHARD_IDS

    def test_segment_generation_parsing(self):
        assert seg.segment_generation("segment-000001.seg") == 0
        assert seg.segment_generation("segment-g0002-000001.seg") == 2
        assert seg.segment_generation("segment-g0041-000137.seg") == 41


def v1_store(directory, n=6) -> tuple[SweepStore, list[str]]:
    """A store whose root is a v1 monolithic manifest, as an old engine
    would have left it: one segment, entries inline in the root."""
    store = SweepStore(directory)
    keys = []
    for i in range(n):
        key, record = record_for(i)
        store.put(key, record)
        keys.append(key)
    store.compact()
    manifest = seg.load_manifest(directory)
    root = {
        "manifest_version": 1,
        "schema_version": manifest.schema_version,
        "engine_version": manifest.engine_version,
        "entries": {
            key: [e.segment, e.offset, e.length, e.checksum]
            for key, e in manifest.entries.items()
        },
        "segments": {
            name: {
                "count": c.count,
                "columns_offset": c.offset,
                "columns_length": c.length,
                "columns_checksum": c.checksum,
            }
            for name, c in manifest.segments.items()
        },
    }
    (Path(directory) / seg.MANIFEST_NAME).write_text(
        json.dumps(root), encoding="utf-8"
    )
    # An old engine never wrote manifest/; drop the v2 leftovers.
    manifest_dir = Path(directory) / seg.MANIFEST_DIR_NAME
    if manifest_dir.is_dir():
        for path in manifest_dir.iterdir():
            path.unlink()
        manifest_dir.rmdir()
    return SweepStore(directory), keys


class Boom(Exception):
    """Injected crash: not an OSError, so no degraded path swallows it."""


class TestMergeCrashSafety:
    """Kill merge at every filesystem write boundary and at GC unlink
    points; after each crash every key must read identically and a
    re-merge must converge to the clean-merge state."""

    def _reference(self, tmp_path):
        generational_store(tmp_path / "ref")
        SweepStore(tmp_path / "ref").merge()
        return snapshot(tmp_path / "ref")

    def _assert_converges(self, directory, reference):
        assert snapshot(directory) == reference  # reads survive the crash
        report = SweepStore(directory).merge()
        assert snapshot(directory) == reference
        final = SweepStore(directory)
        stats = final.stats()
        assert stats.deltas == 0
        names = segment_names(directory)
        assert names and all(
            seg.segment_generation(name) == stats.generation for name in names
        )
        again = SweepStore(directory).merge()
        assert again.merged == 0
        assert again.gc_segments == 0 and again.gc_manifest == 0

    def test_crash_at_every_manifest_write(self, tmp_path, monkeypatch):
        reference = self._reference(tmp_path)

        # Count the write boundaries one clean merge crosses.
        counter = {"n": 0}
        real = seg.atomic_write_bytes

        def counting(path, data):
            counter["n"] += 1
            return real(path, data)

        generational_store(tmp_path / "count")
        monkeypatch.setattr(seg, "atomic_write_bytes", counting)
        SweepStore(tmp_path / "count").merge()
        monkeypatch.setattr(seg, "atomic_write_bytes", real)
        total = counter["n"]
        assert total >= 3  # at least segment + one shard + root

        for crash_at in range(1, total + 1):
            directory = tmp_path / f"crash{crash_at}"
            generational_store(directory)
            state = {"n": 0}

            def injected(path, data, _state=state, _crash_at=crash_at):
                _state["n"] += 1
                if _state["n"] == _crash_at:
                    raise Boom(f"injected crash at write #{_crash_at}")
                return real(path, data)

            monkeypatch.setattr(seg, "atomic_write_bytes", injected)
            with pytest.raises(Boom):
                SweepStore(directory).merge()
            monkeypatch.setattr(seg, "atomic_write_bytes", real)
            self._assert_converges(directory, reference)

    def test_crash_at_gc_unlink_points(self, tmp_path, monkeypatch):
        reference = self._reference(tmp_path)
        real_unlink = Path.unlink

        for crash_at in (1, 2, 3):
            directory = tmp_path / f"gc{crash_at}"
            generational_store(directory)
            state = {"n": 0}

            def injected(self, missing_ok=False, _state=state,
                         _crash_at=crash_at, _dir=directory):
                is_gc_target = _dir in self.parents and (
                    self.name.endswith(".seg")
                    or self.parent.name == seg.MANIFEST_DIR_NAME
                )
                if is_gc_target:
                    _state["n"] += 1
                    if _state["n"] == _crash_at:
                        raise Boom(f"injected crash at unlink #{_crash_at}")
                return real_unlink(self, missing_ok=missing_ok)

            monkeypatch.setattr(Path, "unlink", injected)
            with pytest.raises(Boom):
                SweepStore(directory).merge()
            monkeypatch.setattr(Path, "unlink", real_unlink)
            self._assert_converges(directory, reference)


def tiny_grid(**kwargs):
    from repro.sweeps import SweepGrid

    defaults = dict(
        benchmarks=("ADD",),
        techniques=("parallax", "graphine"),
        spec_axes={"cz_error": (0.002, 0.004)},
        shots=120,
        base_seed=5,
    )
    defaults.update(kwargs)
    return SweepGrid(**defaults)


def store_digest(directory) -> dict:
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(directory).glob("*.json"))
    }


class TestRangeBlocks:
    KEYS = [hashlib.sha256(f"rb{i}".encode()).hexdigest() for i in range(10)]

    def test_partition_covers_every_index_once(self):
        blocks = range_blocks(self.KEYS, 3)
        covered = sorted(i for _, indices in blocks for i in indices)
        assert covered == list(range(10))
        assert [len(indices) for _, indices in blocks] == [3, 3, 3, 1]

    def test_blocks_follow_key_sorted_order(self):
        blocks = range_blocks(self.KEYS, 4)
        flat = [self.KEYS[i] for _, indices in blocks for i in indices]
        assert flat == sorted(self.KEYS)

    def test_lease_range_one_names_are_keys(self):
        blocks = range_blocks(self.KEYS, 1)
        assert [name for name, _ in blocks] == sorted(self.KEYS)
        assert all(len(indices) == 1 for _, indices in blocks)

    def test_names_deterministic_under_input_permutation(self):
        # Every worker derives block names from its own plan expansion;
        # the same key *set* must yield the same named groups.
        shuffled = list(reversed(self.KEYS))
        original = {
            name: [self.KEYS[i] for i in indices]
            for name, indices in range_blocks(self.KEYS, 3)
        }
        permuted = {
            name: [shuffled[i] for i in indices]
            for name, indices in range_blocks(shuffled, 3)
        }
        assert original == permuted

    def test_rejects_bad_lease_range(self):
        with pytest.raises(ValueError):
            range_blocks(self.KEYS, 0)


class TestRangeLeaseWorkers:
    def test_two_workers_byte_identical_to_single_process(self, tmp_path):
        from repro.sweeps import run_sweep

        grid = tiny_grid()
        reference = run_sweep(grid, SweepStore(tmp_path / "ref"))
        report = run_distributed(
            grid, SweepStore(tmp_path / "d"), workers=2, lease_range=2
        )
        assert report.computed == grid.size
        assert report.records == reference.records
        assert store_digest(tmp_path / "ref") == store_digest(tmp_path / "d")

    def test_ranges_counted_in_summary_line(self, tmp_path):
        grid = tiny_grid()
        report = run_worker(
            grid, SweepStore(tmp_path / "s"), owner="me", lease_range=2
        )
        assert report.computed == grid.size
        assert report.ranges == 2  # 4 scenarios / 2 per lease
        assert " ranges=2" in report.summary_line

    def test_crashed_range_lease_reclaimed(self, tmp_path):
        import os
        import time

        from repro.sweeps import run_sweep

        grid = tiny_grid()
        run_sweep(grid, SweepStore(tmp_path / "ref"))
        store = SweepStore(tmp_path / "s")
        plan = plan_sweep(grid)
        name, _ = range_blocks(plan.keys, 2)[0]
        assert store.acquire_lease(name, "crashed") == "acquired"
        past = time.time() - 3600.0
        os.utime(store.lease_path(name), (past, past))

        report = run_worker(
            grid, store, owner="heir", ttl_s=60.0, lease_range=2
        )
        assert report.computed == grid.size
        assert report.reclaimed == 1
        assert store_digest(tmp_path / "ref") == store_digest(tmp_path / "s")
        assert not store.lease_dir.exists()


class TestLeaseKeyCollisionRegression:
    # Lease files were once named by key[:40]; two keys sharing a 40-char
    # prefix then shared one lease file, serializing (or corrupting) two
    # unrelated claims.  Lease paths must use the full key.
    PREFIX = "a" * 40

    def test_prefix_sharing_keys_lease_independently(self, tmp_path):
        k1 = self.PREFIX + "0" * 24
        k2 = self.PREFIX + "1" * 24
        store = SweepStore(tmp_path / "s")
        assert store.lease_path(k1) != store.lease_path(k2)
        assert store.acquire_lease(k1, "w1") == "acquired"
        assert store.acquire_lease(k2, "w2") == "acquired"
        assert store.read_lease(k1)["owner"] == "w1"
        assert store.read_lease(k2)["owner"] == "w2"
        assert store.release_lease(k1, "w1")
        assert store.read_lease(k2)["owner"] == "w2"  # untouched


class TestMergeStatsCLI:
    def _filled(self, directory, n=6):
        store = SweepStore(directory)
        for i in range(n):
            key, record = record_for(i)
            store.put(key, record)
        return store

    def test_merge_subcommand(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        self._filled(tmp_path / "s")
        assert main(["merge", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "MERGE sealed=6 merged=6 segments=1" in out
        assert main(["merge", str(tmp_path / "s")]) == 0
        assert "MERGE sealed=0 merged=0" in capsys.readouterr().out

    def test_stats_subcommand(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        store = self._filled(tmp_path / "s")
        assert main(["stats", str(tmp_path / "s")]) == 0
        assert "STATS loose=6 sealed=0 segments=0" in capsys.readouterr().out
        store.merge()
        store.acquire_lease("f" * 64, "w1")
        assert main(["stats", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "STATS loose=0 sealed=6 segments=1" in out
        assert "leases=1" in out

    def test_compact_line_reports_generation(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        self._filled(tmp_path / "s")
        assert main(["compact", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "COMPACT sealed=6 deduped=0 skipped=0" in out
        assert "generation=1 deltas=0" in out

    def test_merge_flag_requires_store(self):
        from repro.sweeps.__main__ import main

        with pytest.raises(SystemExit):
            main(["--merge"])

    def test_bad_lease_range_rejected(self):
        from repro.sweeps.__main__ import main

        with pytest.raises(SystemExit):
            main(["--lease-range", "0"])
        with pytest.raises(SystemExit):
            main(["worker", "x", "--lease-range", "0"])

    def test_merge_bad_target_rejected(self, tmp_path):
        from repro.sweeps.__main__ import main

        with pytest.raises(SystemExit):
            main(["merge", str(tmp_path / "s"), "--target-records", "0"])
