"""Tests for repro.baselines.router: SWAP routing."""

import numpy as np
import pytest

from repro.baselines.router import RoutingError, SwapRouter
from repro.circuit.circuit import QuantumCircuit


def line_positions(n, spacing=1.0):
    return np.array([[i * spacing, 0.0] for i in range(n)], dtype=float)


class TestMapping:
    def test_identity_initial_mapping(self):
        router = SwapRouter(line_positions(3), 1.5)
        assert router.physical(0) == 0
        assert router.physical(2) == 2

    def test_custom_initial_mapping(self):
        router = SwapRouter(line_positions(3), 1.5, {0: 2, 1: 1, 2: 0})
        assert router.physical(0) == 2

    def test_non_injective_mapping_rejected(self):
        with pytest.raises(ValueError, match="injective"):
            SwapRouter(line_positions(3), 1.5, {0: 0, 1: 0, 2: 2})


class TestRouting:
    def test_adjacent_cz_needs_no_swaps(self):
        router = SwapRouter(line_positions(3), 1.5)
        routed = router.route(QuantumCircuit(3).cz(0, 1))
        assert routed.num_swaps == 0
        assert [g.name for g in routed.gates] == ["cz"]

    def test_distant_cz_inserts_swaps(self):
        # Line 0-1-2-3 with radius covering neighbors only; cz(0, 3) needs
        # the state of 0 moved to within range of 3 (two swaps).
        router = SwapRouter(line_positions(4), 1.2)
        routed = router.route(QuantumCircuit(4).cz(0, 3))
        assert routed.num_swaps == 2
        assert routed.num_cz_expanded == 1 + 3 * 2

    def test_swap_stops_as_soon_as_in_range(self):
        router = SwapRouter(line_positions(3), 1.2)
        routed = router.route(QuantumCircuit(3).cz(0, 2))
        assert routed.num_swaps == 1

    def test_mapping_updated_after_swap(self):
        router = SwapRouter(line_positions(4), 1.2)
        router.route(QuantumCircuit(4).cz(0, 3))
        # Logical 0's state moved along the line.
        assert router.physical(0) != 0

    def test_single_qubit_gates_follow_mapping(self):
        router = SwapRouter(line_positions(4), 1.2)
        c = QuantumCircuit(4).cz(0, 3).h(0)
        routed = router.route(c)
        h_gates = [g for g in routed.gates if g.name == "h"]
        assert h_gates[0].qubits[0] == router.physical(0)

    def test_disconnected_topology_raises(self):
        positions = np.array([[0, 0], [100, 0]], dtype=float)
        router = SwapRouter(positions, 1.0)
        with pytest.raises(RoutingError, match="disconnected"):
            router.route(QuantumCircuit(2).cz(0, 1))

    def test_barriers_and_measures_skipped(self):
        router = SwapRouter(line_positions(2), 1.5)
        c = QuantumCircuit(2)
        c.add("barrier", (0,))
        c.add("measure", (0,))
        routed = router.route(c)
        assert routed.gates == []

    def test_non_basis_two_qubit_rejected(self):
        router = SwapRouter(line_positions(2), 1.5)
        with pytest.raises(ValueError, match="cz"):
            router.route(QuantumCircuit(2).cx(0, 1))

    def test_final_mapping_is_permutation(self):
        router = SwapRouter(line_positions(5), 1.2)
        c = QuantumCircuit(5).cz(0, 4).cz(1, 3).cz(0, 2)
        routed = router.route(c)
        values = list(routed.final_mapping.values())
        assert len(set(values)) == len(values)

    def test_every_emitted_cz_within_radius(self):
        positions = line_positions(6)
        router = SwapRouter(positions, 1.2)
        c = QuantumCircuit(6).cz(0, 5).cz(2, 4).cz(1, 5)
        routed = router.route(c)
        for gate in routed.gates:
            if gate.name in ("cz", "swap"):
                a, b = gate.qubits
                assert np.hypot(*(positions[a] - positions[b])) <= 1.2 + 1e-9

    def test_repeated_far_cz_cheaper_after_first_swap(self):
        # After the first routing, the states are adjacent; repeating the
        # same CZ should need no more swaps.
        router = SwapRouter(line_positions(4), 1.2)
        c = QuantumCircuit(4).cz(0, 3).cz(0, 3)
        routed = router.route(c)
        assert routed.num_swaps == 2  # only the first CZ pays
