"""Tests for repro.sweeps: grid expansion, runner, store, and resume."""

import json
import warnings

import pytest

from repro.experiments.common import clear_caches
from repro.hardware.spec import HardwareSpec
from repro.noise.fidelity import NoiseModelConfig
from repro.sim.noisy import NoisyShotSimulator
from repro.sweeps import (
    NOISE_ONLY_SPEC_FIELDS,
    SweepGrid,
    SweepStore,
    run_sweep,
    scenario_key,
)


def small_grid(**kwargs):
    defaults = dict(
        benchmarks=("ADD",),
        techniques=("parallax",),
        spec_axes={"cz_error": (0.002, 0.004)},
        noise_axes={"include_readout": (False, True)},
        shots=300,
        base_seed=3,
    )
    defaults.update(kwargs)
    return SweepGrid(**defaults)


class TestSweepGrid:
    def test_size_and_expansion_count(self):
        grid = small_grid()
        assert grid.size == 4
        assert len(grid.scenarios()) == 4

    def test_expansion_is_deterministic(self):
        a = small_grid().scenarios()
        b = small_grid().scenarios()
        assert a == b

    def test_unknown_spec_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown spec axis"):
            SweepGrid(spec_axes={"warp_factor": (1, 2)})

    def test_unknown_noise_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown noise axis"):
            SweepGrid(noise_axes={"include_gravity": (True,)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepGrid(spec_axes={"cz_error": ()})

    def test_invalid_shots_rejected(self):
        with pytest.raises(ValueError, match="shots"):
            SweepGrid(shots=0)

    def test_noise_only_axes_share_compile_spec(self):
        grid = small_grid()
        scenarios = grid.scenarios()
        assert all(s.compile_spec == grid.base_spec for s in scenarios)
        assert {s.spec.cz_error for s in scenarios} == {0.002, 0.004}

    def test_compile_affecting_axis_changes_compile_spec(self):
        grid = small_grid(spec_axes={"aod_rows": (10, 20)})
        specs = {s.compile_spec.aod_rows for s in grid.scenarios()}
        assert specs == {10, 20}
        assert "aod_rows" not in NOISE_ONLY_SPEC_FIELDS

    def test_scenario_seeds_are_content_derived(self):
        # Subsetting the benchmark list must not move other scenarios'
        # seeds: a scenario's seed is a pure function of its content.
        wide = SweepGrid(benchmarks=("ADD", "HLF"), techniques=("parallax",),
                         shots=100)
        narrow = SweepGrid(benchmarks=("HLF",), techniques=("parallax",),
                           shots=100)
        wide_hlf = [s for s in wide.scenarios() if s.benchmark == "HLF"]
        assert [s.seed for s in wide_hlf] == [s.seed for s in narrow.scenarios()]

    def test_seeds_differ_across_scenarios(self):
        seeds = [s.seed for s in SweepGrid.default().scenarios()]
        assert len(set(seeds)) == len(seeds)

    def test_presets_expand(self):
        assert SweepGrid.smoke().size == 8
        assert SweepGrid.default().size == 108

    def test_describe_names_overrides(self):
        scenario = small_grid().scenarios()[0]
        assert "ADD/parallax" in scenario.describe()
        assert "cz_error" in scenario.describe()


class TestScenarioKey:
    def test_sensitive_to_content(self):
        a, b = small_grid().scenarios()[:2]
        assert scenario_key(a, "cfp", "gfp") != scenario_key(b, "cfp", "gfp")
        assert scenario_key(a, "cfp", "gfp") != scenario_key(a, "other", "gfp")
        assert scenario_key(a, "cfp", "gfp") != scenario_key(a, "cfp", "other")

    def test_stable(self):
        scenario = small_grid().scenarios()[0]
        assert scenario_key(scenario, "c", "g") == scenario_key(scenario, "c", "g")


class TestSweepStore:
    def test_round_trip(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        store.put("k" * 64, {"scenario": {"benchmark": "ADD"}, "x": 1.5})
        record = store.get("k" * 64)
        assert record["x"] == 1.5
        assert record["key"] == "k" * 64
        assert ("k" * 64) in store
        assert len(store) == 1

    def test_missing_and_corrupt_entries_are_none(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        assert store.get("a" * 64) is None
        store.path("b" * 64).write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable record"):
            assert store.get("b" * 64) is None

    def test_truncated_record_resumes_as_missing_with_warning(self, tmp_path):
        # A kill mid-write on a filesystem without atomic rename leaves a
        # truncated file; it must read as missing (recomputed), not raise.
        store = SweepStore(tmp_path / "s")
        store.put("d" * 64, {"scenario": {"benchmark": "ADD"}, "v": 1})
        full = store.path("d" * 64).read_text(encoding="utf-8")
        store.path("d" * 64).write_text(full[: len(full) // 2], encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable record"):
            assert store.get("d" * 64) is None
        # Same bad file, same store: still missing, but the warning is
        # deduplicated (a big scan must not flood the log).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert list(store.records()) == []
        # A fresh store instance on the same directory does NOT re-warn:
        # dedup is module-level, keyed on (directory, problem), so the many
        # short-lived instances a multi-worker run opens report each
        # problem once per process, not once per instance.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert list(SweepStore(tmp_path / "s").records()) == []
        # clear() re-arms the dedup: the directory's next life is new data.
        store.clear()
        store.path("d" * 64).write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable record"):
            assert store.get("d" * 64) is None

    def test_warnings_also_routed_to_module_logger(self, tmp_path, caplog):
        import logging

        store = SweepStore(tmp_path / "s")
        store.path("e" * 64).write_text("{not json", encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.sweeps.store"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                assert store.get("e" * 64) is None
                assert SweepStore(tmp_path / "s").get("e" * 64) is None
        hits = [r for r in caplog.records if "unreadable record" in r.message]
        assert len(hits) == 1  # once per process, not once per instance

    def test_records_sorted_by_key(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        for key in ("f" * 64, "a" * 64, "c" * 64):
            store.put(key, {"v": key[0]})
        keys = [record["key"] for record in store.records()]
        assert keys == sorted(keys)
        assert len(keys) == 3

    def test_foreign_engine_generation_excluded_from_iteration(self, tmp_path):
        # A store directory reused across package upgrades holds records
        # from two Monte Carlo engine generations; iteration must never
        # blend them into one analysis.
        store = SweepStore(tmp_path / "s")
        store.put("a" * 64, {"v": 1})
        record = {"v": 2, "schema_version": 2, "engine_version": "0.9.0",
                  "key": "b" * 64}
        store.path("b" * 64).write_text(json.dumps(record), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="engine '0.9.0'"):
            kept = list(store.records())
        assert [r["key"] for r in kept] == ["a" * 64]

    def test_put_stamps_engine_version(self, tmp_path):
        from repro import __version__

        store = SweepStore(tmp_path / "s")
        store.put("a" * 64, {"v": 1, "engine_version": "stale"})
        assert store.get("a" * 64)["engine_version"] == __version__

    def test_key_mismatch_rejected(self, tmp_path):
        # A record stored under a truncated-collision path must not be
        # served for a different full key.
        store = SweepStore(tmp_path / "s")
        store.put("c" * 64, {"v": 1})
        payload = json.loads(store.path("c" * 64).read_text())
        assert store.get("c" * 40 + "d" * 24) is None
        assert payload["key"] == "c" * 64

    def test_clear(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        store.put("e" * 64, {"v": 1})
        store.clear()
        assert len(store) == 0

    def test_put_stamps_key_over_stale_record_key(self, tmp_path):
        # A record copied from elsewhere (stale embedded key) must be
        # re-addressed by the key it is stored under, not made invisible.
        store = SweepStore(tmp_path / "s")
        store.put("f" * 64, {"key": "stale", "v": 2})
        record = store.get("f" * 64)
        assert record is not None
        assert record["key"] == "f" * 64


class TestRunSweep:
    def test_end_to_end_records(self, tmp_path):
        grid = small_grid()
        report = run_sweep(grid, SweepStore(tmp_path / "s"))
        assert report.scenarios == 4
        assert report.computed == 4
        assert report.resumed == 0
        # Both cz_error values ride on one compilation (noise-only field).
        assert report.compilations == 1
        for record, scenario in zip(report.records, grid.scenarios()):
            assert record["scenario"]["benchmark"] == scenario.benchmark
            assert record["outcome"]["shots"] == 300
            assert 0.0 <= record["outcome"]["success_rate"] <= 1.0
            assert 0.0 <= record["analytic_success"] <= 1.0

    def test_empirical_tracks_analytic(self):
        grid = small_grid(shots=20_000,
                          spec_axes={"cz_error": (0.004,)},
                          noise_axes={})
        report = run_sweep(grid)
        record = report.records[0]
        margin = 4 * record["outcome"]["stderr"] + 1e-3
        assert record["outcome"]["success_rate"] == pytest.approx(
            record["analytic_success"], abs=margin
        )

    def test_workers_do_not_change_records(self, tmp_path):
        grid = small_grid()
        clear_caches()
        one = run_sweep(grid, workers=1)
        clear_caches()
        two = run_sweep(grid, workers=2)
        assert one.records == two.records

    def test_noise_only_axis_swaps_effective_spec(self):
        grid = small_grid()
        report = run_sweep(grid)
        # Different cz_error values must yield different analytic success
        # even though the compiled artifact is shared.
        by_cz = {}
        for record in report.records:
            cz = record["scenario"]["spec_overrides"]["cz_error"]
            by_cz.setdefault(cz, set()).add(record["analytic_success"])
        assert len(by_cz) == 2
        assert by_cz[0.002] != by_cz[0.004]

    def test_limit_truncates_scenarios(self):
        report = run_sweep(small_grid(), limit=2)
        assert report.scenarios == 2
        assert report.computed == 2

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError, match="limit"):
            run_sweep(small_grid(), limit=0)

    def test_records_survive_store_round_trip_identically(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        report = run_sweep(small_grid(), store)
        for record in report.records:
            assert store.get(record["key"]) == record


class TestResume:
    def test_full_resume_skips_everything(self, tmp_path):
        grid = small_grid()
        store = SweepStore(tmp_path / "s")
        first = run_sweep(grid, store)
        second = run_sweep(grid, store, resume=True)
        assert second.computed == 0
        assert second.resumed == 4
        assert second.compilations == 0
        assert second.records == first.records

    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path, monkeypatch):
        grid = small_grid()
        reference = run_sweep(grid, SweepStore(tmp_path / "ref"))

        # Kill the sweep after two evaluated scenarios.
        store = SweepStore(tmp_path / "s")
        real_run = NoisyShotSimulator.run
        calls = {"n": 0}

        def dying_run(self, shots=8000):
            if calls["n"] >= 2:
                raise KeyboardInterrupt("killed mid-sweep")
            calls["n"] += 1
            return real_run(self, shots)

        monkeypatch.setattr(NoisyShotSimulator, "run", dying_run)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(grid, store)
        assert len(store) == 2  # finished scenarios survived the kill

        # Restart: only the two missing scenarios are evaluated.
        counting = {"n": 0}

        def counting_run(self, shots=8000):
            counting["n"] += 1
            return real_run(self, shots)

        monkeypatch.setattr(NoisyShotSimulator, "run", counting_run)
        resumed = run_sweep(grid, store, resume=True)
        assert counting["n"] == 2
        assert resumed.resumed == 2
        assert resumed.computed == 2
        # Bit-identical to the uninterrupted reference run.
        assert resumed.records == reference.records

    def test_without_resume_recomputes(self, tmp_path):
        grid = small_grid()
        store = SweepStore(tmp_path / "s")
        run_sweep(grid, store)
        again = run_sweep(grid, store)  # resume not requested
        assert again.computed == 4
        assert again.resumed == 0


class TestSweepCLI:
    def test_smoke_preset_end_to_end(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        store_dir = tmp_path / "out"
        code = main([
            "--preset", "smoke", "--shots", "50", "--quiet",
            "--store", str(store_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenarios" in out
        assert len(SweepStore(store_dir)) == 8

    def test_limit_truncates(self, tmp_path):
        from repro.sweeps.__main__ import main

        store_dir = tmp_path / "out"
        assert main([
            "--preset", "smoke", "--shots", "20", "--quiet",
            "--limit", "3", "--store", str(store_dir),
        ]) == 0
        assert len(SweepStore(store_dir)) == 3

    def test_resume_requires_store(self):
        from repro.sweeps.__main__ import main

        with pytest.raises(SystemExit):
            main(["--resume"])

    def test_custom_axes(self, capsys):
        from repro.sweeps.__main__ import main

        assert main([
            "--preset", "smoke", "--shots", "20", "--quiet",
            "--spec-axis", "cz_error=0.001,0.002",
            "--noise-axis", "include_readout=false",
        ]) == 0
        assert "scenarios" in capsys.readouterr().out

    def test_bad_axis_field_reports_error(self, capsys):
        from repro.sweeps.__main__ import main

        # Axis validation goes through parser.error (argparse usage-error
        # exit code 2), like every other bad flag.
        with pytest.raises(SystemExit) as excinfo:
            main([
                "--preset", "smoke", "--quiet",
                "--spec-axis", "warp_factor=1,2",
            ])
        assert excinfo.value.code == 2
        assert "unknown spec axis" in capsys.readouterr().err

    def test_eval_jobs_flag_matches_in_process(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        one, four = tmp_path / "one", tmp_path / "four"
        assert main(["--preset", "smoke", "--shots", "50", "--quiet",
                     "--store", str(one)]) == 0
        assert main(["--preset", "smoke", "--shots", "50", "--quiet",
                     "--eval-jobs", "4", "--store", str(four)]) == 0
        records_one = list(SweepStore(one).records())
        records_four = list(SweepStore(four).records())
        assert records_one == records_four


class TestAnalyzeCLI:
    @pytest.fixture()
    def store_dir(self, tmp_path):
        from repro.sweeps.__main__ import main

        directory = tmp_path / "out"
        assert main([
            "--preset", "smoke", "--shots", "50", "--quiet",
            "--store", str(directory),
        ]) == 0
        return directory

    def test_analyze_prints_marginals_and_crossovers(self, store_dir, capsys):
        from repro.sweeps.__main__ import main

        assert main(["analyze", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "benchmark" in out
        assert "axes:" in out
        assert "crossover" in out

    def test_analyze_csv_dump(self, store_dir, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        csv_path = tmp_path / "flat.csv"
        assert main(["analyze", str(store_dir), "--csv", str(csv_path)]) == 0
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 9  # header + 8 smoke scenarios
        assert "benchmark" in lines[0]

    def test_analyze_empty_store_errors(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        assert main(["analyze", str(tmp_path / "empty")]) == 1
        assert "no readable records" in capsys.readouterr().err

    def test_analyze_unknown_metric_errors(self, store_dir, capsys):
        from repro.sweeps.__main__ import main

        assert main(["analyze", str(store_dir), "--metric", "nope"]) == 1
        assert "unknown metric" in capsys.readouterr().err

    def test_analyze_bad_axis_errors(self, store_dir, capsys):
        from repro.sweeps.__main__ import main

        assert main(["analyze", str(store_dir), "--axis", "t2_us"]) == 1
        assert "not a numeric sweep axis" in capsys.readouterr().err

    def test_cli_sweep_summary_flag(self, store_dir, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["--sweep-summary", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "crossover" in out

    def test_cli_sweep_summary_empty_errors(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["--sweep-summary", str(tmp_path / "none")]) == 1
        assert "no readable sweep records" in capsys.readouterr().err


class TestNoiseOnlyFieldSet:
    def test_noise_only_fields_exist_on_spec(self):
        import dataclasses

        names = {f.name for f in dataclasses.fields(HardwareSpec)}
        assert NOISE_ONLY_SPEC_FIELDS <= names

    def test_compile_relevant_fields_excluded(self):
        for name in ("grid_rows", "aod_rows", "move_speed_um_per_us",
                     "trap_switch_time_us", "min_separation_um"):
            assert name not in NOISE_ONLY_SPEC_FIELDS


class TestPhaseTimings:
    """Batch runs aggregate per-stage PhaseTimer totals across workers."""

    def test_phase_total_keys_match_across_worker_counts(self):
        grid = small_grid()
        clear_caches()
        one = run_sweep(grid, workers=1)
        clear_caches()
        two = run_sweep(grid, workers=2)
        assert one.phase_totals  # fresh caches actually compiled something
        assert set(one.phase_totals) == set(two.phase_totals)
        stages = {"transpile", "layout", "placement", "schedule", "finalize"}
        for key in one.phase_totals:
            technique, _, stage = key.partition(".")
            assert technique == "parallax"
            assert stage in stages

    def test_cached_rerun_reports_empty_phase_totals(self):
        grid = small_grid()
        clear_caches()
        run_sweep(grid)
        again = run_sweep(grid)  # every compile point is now a cache hit
        assert again.phase_totals == {}
        assert again.compile_s == 0.0

    def test_summary_line_appends_compile_s(self):
        grid = small_grid()
        clear_caches()
        report = run_sweep(grid)
        assert (
            f"compilations={report.compilations} compile_s=" in report.summary_line
        )
        assert report.compile_s == pytest.approx(sum(report.phase_totals.values()))
