"""Tests for repro.circuit.matrices: gate unitaries and circuit products."""

import math

import numpy as np
import pytest

from repro.circuit.gate import Gate
from repro.circuit.matrices import CZ_MATRIX, circuit_unitary, gate_unitary, u3_matrix


def assert_unitary(u: np.ndarray) -> None:
    np.testing.assert_allclose(u.conj().T @ u, np.eye(u.shape[0]), atol=1e-12)


ALL_1Q_FIXED = ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg"]


class TestOneQubitMatrices:
    @pytest.mark.parametrize("name", ALL_1Q_FIXED)
    def test_fixed_gates_unitary(self, name):
        assert_unitary(gate_unitary(Gate(name, (0,))))

    def test_h_squares_to_identity(self):
        h = gate_unitary(Gate("h", (0,)))
        np.testing.assert_allclose(h @ h, np.eye(2), atol=1e-12)

    def test_s_is_sqrt_z(self):
        s = gate_unitary(Gate("s", (0,)))
        z = gate_unitary(Gate("z", (0,)))
        np.testing.assert_allclose(s @ s, z, atol=1e-12)

    def test_t_is_sqrt_s(self):
        t = gate_unitary(Gate("t", (0,)))
        s = gate_unitary(Gate("s", (0,)))
        np.testing.assert_allclose(t @ t, s, atol=1e-12)

    def test_sdg_inverts_s(self):
        s = gate_unitary(Gate("s", (0,)))
        sdg = gate_unitary(Gate("sdg", (0,)))
        np.testing.assert_allclose(s @ sdg, np.eye(2), atol=1e-12)

    def test_sx_squares_to_x(self):
        sx = gate_unitary(Gate("sx", (0,)))
        x = gate_unitary(Gate("x", (0,)))
        np.testing.assert_allclose(sx @ sx, x, atol=1e-12)

    def test_u3_matches_paper_form(self):
        theta, phi, lam = 0.7, 0.3, -0.4
        u = u3_matrix(theta, phi, lam)
        assert u[0, 0] == pytest.approx(math.cos(theta / 2))
        assert abs(u[0, 1]) == pytest.approx(math.sin(theta / 2))
        assert_unitary(u)

    def test_u3_special_cases(self):
        # U3(pi/2, 0, pi) = H up to global phase
        h = gate_unitary(Gate("h", (0,)))
        u = u3_matrix(math.pi / 2, 0.0, math.pi)
        ratio = u[0, 0] / h[0, 0]
        np.testing.assert_allclose(u, ratio * h, atol=1e-12)

    def test_rotation_gates_unitary(self):
        for name in ("rx", "ry", "rz"):
            assert_unitary(gate_unitary(Gate(name, (0,), (0.37,))))

    def test_rz_diagonal(self):
        rz = gate_unitary(Gate("rz", (0,), (1.1,)))
        assert rz[0, 1] == 0 and rz[1, 0] == 0

    def test_u1_phase_gate(self):
        u1 = gate_unitary(Gate("u1", (0,), (0.9,)))
        assert u1[0, 0] == pytest.approx(1.0)
        assert np.angle(u1[1, 1]) == pytest.approx(0.9)


class TestTwoQubitMatrices:
    def test_cz_matches_paper(self):
        np.testing.assert_allclose(gate_unitary(Gate("cz", (0, 1))), CZ_MATRIX)

    def test_cz_symmetric(self):
        np.testing.assert_allclose(
            gate_unitary(Gate("cz", (0, 1))), gate_unitary(Gate("cz", (1, 0)))
        )

    def test_cx_action_on_basis(self):
        cx = gate_unitary(Gate("cx", (0, 1)))
        # little-endian: control is bit 0. |01> (control=1, target=0) -> |11>
        state = np.zeros(4)
        state[0b01] = 1.0
        out = cx @ state
        assert out[0b11] == pytest.approx(1.0)

    def test_swap_action(self):
        swap = gate_unitary(Gate("swap", (0, 1)))
        state = np.zeros(4)
        state[0b01] = 1.0
        out = swap @ state
        assert out[0b10] == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "name,params",
        [
            ("cz", ()), ("cx", ()), ("cy", ()), ("ch", ()), ("swap", ()),
            ("iswap", ()), ("cp", (0.5,)), ("crx", (0.4,)), ("cry", (0.4,)),
            ("crz", (0.4,)), ("cu3", (0.3, 0.2, 0.1)), ("rxx", (0.7,)),
            ("ryy", (0.7,)), ("rzz", (0.7,)),
        ],
    )
    def test_all_two_qubit_unitary(self, name, params):
        assert_unitary(gate_unitary(Gate(name, (0, 1), params)))

    def test_rzz_diagonal(self):
        rzz = gate_unitary(Gate("rzz", (0, 1), (0.6,)))
        off_diag = rzz - np.diag(np.diag(rzz))
        assert np.abs(off_diag).max() == 0

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError, match="no dense unitary"):
            gate_unitary(Gate("barrier", (0,)))


class TestCircuitUnitary:
    def test_identity_for_empty(self):
        u = circuit_unitary([], 2)
        np.testing.assert_allclose(u, np.eye(4))

    def test_bell_circuit(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        u = circuit_unitary(gates, 2)
        state = u @ np.array([1, 0, 0, 0], dtype=complex)
        np.testing.assert_allclose(abs(state[0b00]), 1 / math.sqrt(2), atol=1e-12)
        np.testing.assert_allclose(abs(state[0b11]), 1 / math.sqrt(2), atol=1e-12)

    def test_gate_order_matters(self):
        a = circuit_unitary([Gate("h", (0,)), Gate("s", (0,))], 1)
        b = circuit_unitary([Gate("s", (0,)), Gate("h", (0,))], 1)
        assert not np.allclose(a, b)

    def test_skips_barriers(self):
        u = circuit_unitary([Gate("barrier", (0,)), Gate("x", (0,))], 1)
        np.testing.assert_allclose(u, gate_unitary(Gate("x", (0,))))

    def test_measure_raises(self):
        with pytest.raises(ValueError, match="measured"):
            circuit_unitary([Gate("measure", (0,))], 1)

    def test_large_circuit_rejected(self):
        with pytest.raises(ValueError, match="small"):
            circuit_unitary([], 11)

    def test_embedding_nonadjacent_qubits(self):
        # CX between qubits 0 and 2 in a 3-qubit system.
        cx02 = circuit_unitary([Gate("cx", (0, 2))], 3)
        state = np.zeros(8)
        state[0b001] = 1.0  # qubit0=1
        out = cx02 @ state
        assert abs(out[0b101]) == pytest.approx(1.0)  # qubit2 flipped
