"""Tests for repro.analysis: metrics and report rendering."""

import math

import pytest

from repro.analysis.metrics import (
    ComparisonSummary,
    compare_techniques,
    cz_reduction,
    geometric_mean,
    success_improvement,
)
from repro.analysis.report import render_markdown_report
from repro.core.result import CompilationResult
from repro.experiments.common import ExperimentTable
from repro.hardware.spec import HardwareSpec
from repro.sweeps.analysis import ResultTable


def make_result(technique="parallax", num_cz=100, runtime_us=100.0, **kwargs):
    defaults = dict(
        technique=technique,
        circuit_name="t",
        num_qubits=4,
        spec=HardwareSpec.quera_aquila(),
        num_cz=num_cz,
        runtime_us=runtime_us,
    )
    defaults.update(kwargs)
    return CompilationResult(**defaults)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestCzReduction:
    def test_reduction(self):
        base = make_result("graphine", num_cz=200)
        parallax = make_result(num_cz=100)
        assert cz_reduction(base, parallax) == pytest.approx(0.5)

    def test_zero_baseline(self):
        assert cz_reduction(make_result(num_cz=0), make_result(num_cz=0)) == 0.0


class TestSuccessImprovement:
    def test_fewer_cz_improves(self):
        base = make_result("eldi", num_cz=400)
        parallax = make_result(num_cz=100)
        assert success_improvement(base, parallax) > 0

    def test_equal_results_zero(self):
        a = make_result(num_cz=100)
        b = make_result(num_cz=100)
        assert success_improvement(a, b) == pytest.approx(0.0)


class TestCompareTechniques:
    def build_table(self):
        # The unified-rows equivalent of the old nested results mapping.
        return ResultTable.from_compilations(
            [
                ("B1", "parallax", make_result(num_cz=100, runtime_us=100)),
                ("B1", "eldi", make_result("eldi", num_cz=200, runtime_us=80)),
                ("B2", "parallax", make_result(num_cz=50, runtime_us=50)),
                ("B2", "eldi", make_result("eldi", num_cz=100, runtime_us=50)),
            ]
        )

    def test_summary_fields(self):
        summary = compare_techniques(self.build_table(), "eldi")
        assert summary.baseline == "eldi"
        assert summary.num_benchmarks == 2
        assert summary.mean_cz_reduction == pytest.approx(0.5)
        assert summary.mean_success_improvement > 0
        assert summary.median_success_improvement > 0
        assert summary.mean_runtime_ratio > 0

    def test_missing_technique_rejected(self):
        table = ResultTable.from_compilations([("B", "parallax", make_result())])
        with pytest.raises(KeyError):
            compare_techniques(table, "eldi")

    def test_describe_is_readable(self):
        summary = compare_techniques(self.build_table(), "eldi")
        text = summary.describe()
        assert "eldi" in text and "benchmarks" in text

    def test_infinite_improvements_excluded(self):
        table = ResultTable.from_compilations(
            [
                ("B", "parallax", make_result(num_cz=10)),
                ("B", "eldi", make_result("eldi", num_cz=2_000_000)),  # underflows
            ]
        )
        summary = compare_techniques(table, "eldi")
        assert not math.isinf(summary.mean_success_improvement)

    def test_sweep_rows_are_averaged_per_benchmark(self):
        # Multiple rows per (benchmark, technique) -- e.g. a noise sweep --
        # are reduced by their mean before comparison.
        table = ResultTable.from_compilations(
            [
                ("B", "parallax", make_result(num_cz=100, runtime_us=100)),
                ("B", "parallax", make_result(num_cz=200, runtime_us=100)),
                ("B", "eldi", make_result("eldi", num_cz=300, runtime_us=100)),
            ]
        )
        summary = compare_techniques(table, "eldi")
        assert summary.mean_cz_reduction == pytest.approx(0.5)


class TestMarkdownReport:
    def test_renders_tables_and_notes(self):
        table = ExperimentTable(
            title="Demo", headers=("a", "b"), rows=((1, 2.5), (3, 4.0))
        )
        text = render_markdown_report(
            "Report", [table], notes=["shape holds"],
        )
        assert "# Report" in text
        assert "## Demo" in text
        assert "| a | b |" in text
        assert "- shape holds" in text

    def test_summaries_section(self):
        summary = ComparisonSummary(
            baseline="eldi", num_benchmarks=3, mean_cz_reduction=0.25,
            mean_success_improvement=0.3, median_success_improvement=0.3,
            mean_runtime_ratio=1.1,
        )
        text = render_markdown_report("R", [], summaries={"vs ELDI": summary})
        assert "Headline comparisons" in text
        assert "vs ELDI" in text
