"""Tests for repro.core.serialize: JSON round-trips of compiled results."""

import json

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import ParallaxCompiler
from repro.core.serialize import (
    dumps_result,
    loads_result,
    result_from_dict,
    result_to_dict,
)
from repro.hardware.spec import HardwareSpec
from repro.noise import success_probability


@pytest.fixture(scope="module")
def result():
    c = QuantumCircuit(4, "serialize-me")
    c.h(0).ccx(0, 1, 2).cz(2, 3).swap(1, 3)
    return ParallaxCompiler(HardwareSpec.quera_aquila()).compile(c)


class TestRoundTrip:
    def test_counts_survive(self, result):
        back = loads_result(dumps_result(result))
        assert back.num_cz == result.num_cz
        assert back.num_u3 == result.num_u3
        assert back.num_swaps == result.num_swaps
        assert back.trap_change_events == result.trap_change_events

    def test_layers_survive_exactly(self, result):
        back = loads_result(dumps_result(result))
        assert back.num_layers == result.num_layers
        for a, b in zip(back.layers, result.layers):
            assert a.gates == b.gates
            assert a.time_us == b.time_us
            assert a.line_moves == b.line_moves

    def test_spec_survives(self, result):
        back = loads_result(dumps_result(result))
        assert back.spec == result.spec

    def test_derived_metrics_identical(self, result):
        back = loads_result(dumps_result(result))
        assert back.runtime_us == result.runtime_us
        assert success_probability(back) == pytest.approx(
            success_probability(result)
        )

    def test_json_is_plain_data(self, result):
        data = json.loads(dumps_result(result))
        assert data["schema_version"] == 1
        assert isinstance(data["layers"], list)

    def test_indent_option(self, result):
        assert "\n" in dumps_result(result, indent=2)


class TestSchema:
    def test_unknown_version_rejected(self, result):
        data = result_to_dict(result)
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema"):
            result_from_dict(data)

    def test_missing_ccz_defaults_zero(self, result):
        data = result_to_dict(result)
        del data["num_ccz"]
        back = result_from_dict(data)
        assert back.num_ccz == 0
