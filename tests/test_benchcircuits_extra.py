"""Tests for repro.benchcircuits.extra: the additional circuit families.

Where feasible the circuits are verified *functionally* with the state
vector simulator (GHZ correlations, BV secret recovery, Grover
amplification, QPE phase readout), not just structurally.
"""

import math

import pytest

from repro.benchcircuits.extra import (
    bernstein_vazirani,
    ghz_state,
    grover,
    phase_estimation,
    random_clifford_t,
)
from repro.sim import simulate_circuit
from repro.transpile import transpile


class TestGhz:
    def test_structure(self):
        c = ghz_state(6)
        assert c.num_qubits == 6
        assert c.count_ops() == {"h": 1, "cx": 5}

    def test_state_is_ghz(self):
        sv = simulate_circuit(ghz_state(4))
        probs = sv.probabilities()
        assert probs[0b0000] == pytest.approx(0.5)
        assert probs[0b1111] == pytest.approx(0.5)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ghz_state(1)


class TestBernsteinVazirani:
    def test_secret_recovered(self):
        secret = "10110"
        sv = simulate_circuit(bernstein_vazirani(secret))
        # Counting register must read the secret with certainty.
        expected = secret + "1"  # ancilla in |-> measures 1 after H? keep |1>
        # Marginalize over the ancilla: sum probabilities where the first
        # n bits equal the secret.
        n = len(secret)
        total = 0.0
        probs = sv.probabilities()
        for idx, p in enumerate(probs):
            bits = "".join(str((idx >> i) & 1) for i in range(n))
            if bits == secret:
                total += p
        assert total == pytest.approx(1.0)

    def test_bad_secret_rejected(self):
        with pytest.raises(ValueError):
            bernstein_vazirani("10a1")

    def test_compiles_with_parallax(self):
        from repro.core.compiler import ParallaxCompiler
        from repro.hardware.spec import HardwareSpec

        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(
            bernstein_vazirani()
        )
        assert result.num_swaps == 0


class TestGrover:
    def test_amplifies_marked_state(self):
        num_vars, marked = 4, 9
        c = grover(num_vars=num_vars, marked=marked)
        sv = simulate_circuit(c)
        probs = sv.probabilities()
        # Marginal probability of the marked search-register value.
        total = 0.0
        for idx, p in enumerate(probs):
            if idx & ((1 << num_vars) - 1) == marked:
                total += p
        assert total > 0.5  # well above uniform 1/16

    def test_marked_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            grover(num_vars=3, marked=8)

    def test_iterations_default_near_optimal(self):
        c = grover(num_vars=4)
        # pi/4 * sqrt(16) = 3.14 -> 3 iterations.
        assert "GROVER" == c.name


class TestPhaseEstimation:
    @pytest.mark.parametrize("phase", [0.25, 0.3125, 0.5, 0.8125])
    def test_exact_phases_read_exactly(self, phase):
        precision = 5
        c = phase_estimation(precision_qubits=precision, phase=phase)
        sv = simulate_circuit(c)
        probs = sv.probabilities()
        expected_int = int(round(phase * 2**precision))
        total = 0.0
        for idx, p in enumerate(probs):
            counting = idx & ((1 << precision) - 1)
            # The counting register holds the bit-reversed... our inverse
            # QFT undoes ordering, so compare directly.
            if counting == expected_int:
                total += p
        assert total > 0.9

    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            phase_estimation(phase=1.5)


class TestRandomCliffordT:
    def test_deterministic(self):
        a = random_clifford_t(seed=3)
        b = random_clifford_t(seed=3)
        assert list(a) == list(b)

    def test_depth_scales_gates(self):
        small = len(random_clifford_t(depth=5))
        large = len(random_clifford_t(depth=10))
        assert large > small

    def test_transpiles_clean(self):
        out = transpile(random_clifford_t(num_qubits=6, depth=8))
        assert set(g.name for g in out) <= {"u3", "cz"}

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            random_clifford_t(t_fraction=2.0)
