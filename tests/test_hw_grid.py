"""Tests for repro.hardware.grid: discretization (Step 2)."""

import numpy as np
import pytest

from repro.hardware.geometry import min_pairwise_separation
from repro.hardware.grid import discretize_positions, grid_site_coords, unit_to_physical_scale
from repro.hardware.spec import HardwareSpec


@pytest.fixture
def spec():
    return HardwareSpec.quera_aquila()


class TestGridSiteCoords:
    def test_count_and_pitch(self, spec):
        coords = grid_site_coords(spec)
        assert coords.shape == (256, 2)
        # First row runs along x with the pitch spacing.
        assert coords[1][0] - coords[0][0] == pytest.approx(spec.grid_pitch_um)

    def test_all_sites_distinct(self, spec):
        coords = grid_site_coords(spec)
        assert len({tuple(c) for c in coords.tolist()}) == 256


class TestUnitScale:
    def test_square_grid_scale(self, spec):
        w, h = spec.extent_um
        assert unit_to_physical_scale(spec) == pytest.approx(min(w, h))


class TestDiscretizePositions:
    def test_corners_map_to_corners(self, spec):
        unit = np.array([[0.0, 0.0], [1.0, 1.0]])
        positions, sites = discretize_positions(unit, spec)
        assert sites[0] == (0, 0)
        assert sites[1] == (15, 15)

    def test_positions_match_sites(self, spec):
        unit = np.random.default_rng(1).random((20, 2))
        positions, sites = discretize_positions(unit, spec)
        for pos, (row, col) in zip(positions, sites):
            np.testing.assert_allclose(
                pos, [col * spec.grid_pitch_um, row * spec.grid_pitch_um]
            )

    def test_no_two_qubits_share_a_site(self, spec):
        # Everyone wants the center: collisions must resolve to free sites.
        unit = np.full((30, 2), 0.5)
        _, sites = discretize_positions(unit, spec)
        assert len(set(sites)) == 30

    def test_separation_constraint_always_satisfied(self, spec):
        unit = np.random.default_rng(2).random((64, 2))
        positions, _ = discretize_positions(unit, spec)
        assert min_pairwise_separation(positions) >= spec.min_separation_um

    def test_deterministic(self, spec):
        unit = np.random.default_rng(3).random((40, 2))
        a = discretize_positions(unit, spec)[1]
        b = discretize_positions(unit, spec)[1]
        assert a == b

    def test_full_grid_capacity(self, spec):
        unit = np.random.default_rng(4).random((256, 2))
        _, sites = discretize_positions(unit, spec)
        assert len(set(sites)) == 256

    def test_over_capacity_rejected(self, spec):
        unit = np.random.default_rng(5).random((257, 2))
        with pytest.raises(ValueError, match="do not fit"):
            discretize_positions(unit, spec)

    def test_out_of_unit_square_rejected(self, spec):
        with pytest.raises(ValueError, match="unit_positions"):
            discretize_positions(np.array([[1.2, 0.0]]), spec)

    def test_bad_shape_rejected(self, spec):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            discretize_positions(np.zeros((3, 3)), spec)

    def test_empty_input(self, spec):
        positions, sites = discretize_positions(np.zeros((0, 2)), spec)
        assert positions.shape == (0, 2) and sites == []

    def test_nearby_points_stay_nearby(self, spec):
        # Discretization error is bounded by about one pitch.
        unit = np.array([[0.5, 0.5], [0.52, 0.5]])
        positions, _ = discretize_positions(unit, spec)
        target = unit * [spec.extent_um[0], spec.extent_um[1]]
        for got, want in zip(positions, target):
            assert np.hypot(*(got - want)) <= 2 * spec.grid_pitch_um
