"""Tests for repro.timing.runtime."""

import warnings

import pytest

from repro.core.result import CompilationResult, CompiledLayer
from repro.hardware.spec import HardwareSpec, TRAP_SWITCHES_PER_RESOLUTION
from repro.noise.fidelity import NoiseModelConfig
from repro.timing.runtime import (
    RuntimeBreakdown,
    gate_phase_residual_us,
    gate_phase_time_us,
    movement_time_us,
    runtime_breakdown,
    trap_change_time_us,
)


def make_result(layers, trap_changes=0, spec=None):
    spec = spec or HardwareSpec.quera_aquila()
    runtime = sum(l.time_us for l in layers)
    return CompilationResult(
        technique="parallax",
        circuit_name="t",
        num_qubits=2,
        spec=spec,
        layers=list(layers),
        trap_change_events=trap_changes,
        runtime_us=runtime,
    )


class TestMovementTime:
    def test_sums_out_and_return(self):
        spec = HardwareSpec()
        layers = [
            CompiledLayer(gates=(), move_distance_um=55.0, return_distance_um=55.0,
                          time_us=3.0),
            CompiledLayer(gates=(), move_distance_um=110.0, time_us=2.8),
        ]
        result = make_result(layers, spec=spec)
        assert movement_time_us(result) == pytest.approx((55 + 55 + 110) / 55.0)

    def test_zero_when_no_moves(self):
        result = make_result([CompiledLayer(gates=(), time_us=0.8)])
        assert movement_time_us(result) == 0.0


class TestTrapChangeTime:
    def test_per_event_cost(self):
        spec = HardwareSpec()
        result = make_result([], trap_changes=3, spec=spec)
        per_event = 2 * spec.trap_switch_time_us + 2 * spec.move_time_us(
            spec.grid_pitch_um
        )
        assert trap_change_time_us(result) == pytest.approx(3 * per_event)

    def test_zero_events(self):
        assert trap_change_time_us(make_result([])) == 0.0


class TestBreakdown:
    def test_components_sum_to_total(self):
        spec = HardwareSpec()
        layers = [
            CompiledLayer(gates=(), move_distance_um=55.0, return_distance_um=55.0,
                          trap_changes=1,
                          time_us=0.8 + 2.0 + 2 * spec.trap_switch_time_us
                          + 2 * spec.move_time_us(spec.grid_pitch_um)),
        ]
        result = make_result(layers, trap_changes=1, spec=spec)
        breakdown = runtime_breakdown(result)
        assert breakdown.total_us == pytest.approx(result.runtime_us)

    def test_gate_phase_is_residual(self):
        layers = [CompiledLayer(gates=(), time_us=2.0)]
        result = make_result(layers)
        assert gate_phase_time_us(result) == pytest.approx(2.0)

    def test_gate_phase_never_negative_but_warns(self):
        # Pathological record: declared runtime smaller than components.
        # The clamp keeps Table IV well-formed, but the inconsistency is
        # surfaced instead of silently hidden.
        layers = [CompiledLayer(gates=(), move_distance_um=1000.0, time_us=0.0)]
        result = make_result(layers)
        with pytest.warns(RuntimeWarning, match="inconsistent"):
            assert gate_phase_time_us(result) == 0.0

    def test_negative_residual_exposed_raw(self):
        layers = [CompiledLayer(gates=(), move_distance_um=1000.0, time_us=0.0)]
        result = make_result(layers)
        residual = gate_phase_residual_us(result)
        assert residual == pytest.approx(-1000.0 / result.spec.move_speed_um_per_us)
        with pytest.warns(RuntimeWarning, match="inconsistent"):
            breakdown = runtime_breakdown(result)
        assert breakdown.gates_us == 0.0
        assert breakdown.residual_us == pytest.approx(residual)
        assert not breakdown.is_consistent

    def test_consistent_breakdown_does_not_warn(self):
        layers = [CompiledLayer(gates=(), time_us=2.0)]
        result = make_result(layers)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            breakdown = runtime_breakdown(result)
        assert breakdown.is_consistent
        assert breakdown.residual_us == pytest.approx(breakdown.gates_us)

    def test_tiny_float_noise_does_not_warn(self):
        # Residuals within floating-point noise of zero are not flagged.
        spec = HardwareSpec()
        time_us = spec.move_time_us(55.0)
        layers = [CompiledLayer(gates=(), move_distance_um=55.0,
                                time_us=time_us)]
        result = make_result(layers, spec=spec)
        result.runtime_us = time_us * (1.0 - 1e-15)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            gate_phase_time_us(result)

    def test_shared_trap_switch_default(self):
        # The analytic fidelity model and the runtime decomposition must
        # charge the same number of switches per trap-change resolution:
        # both defaults come from the single hardware.spec constant.
        assert (
            NoiseModelConfig().trap_switches_per_resolution
            == TRAP_SWITCHES_PER_RESOLUTION
        )
        spec = HardwareSpec()
        result = make_result([], trap_changes=5, spec=spec)
        per_event = (
            TRAP_SWITCHES_PER_RESOLUTION * spec.trap_switch_time_us
            + 2.0 * spec.move_time_us(spec.grid_pitch_um)
        )
        assert trap_change_time_us(result) == pytest.approx(5 * per_event)

    def test_parallax_compilation_breakdown_consistent(self):
        from repro.core.compiler import ParallaxCompiler
        from repro.circuit.circuit import QuantumCircuit

        c = QuantumCircuit(3)
        c.cswap(0, 1, 2)
        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(c)
        breakdown = runtime_breakdown(result)
        assert breakdown.total_us == pytest.approx(result.runtime_us, rel=1e-9)
        assert breakdown.gates_us > 0
