"""Tests for repro.core.compiler: the end-to-end Parallax pipeline."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.core.scheduler import SchedulerConfig
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import generate_layout
from repro.transpile import transpile


def fredkin():
    c = QuantumCircuit(3, "fredkin")
    c.cswap(0, 1, 2)
    return c


@pytest.fixture(scope="module")
def spec():
    return HardwareSpec.quera_aquila()


@pytest.fixture(scope="module")
def result(spec):
    return ParallaxCompiler(spec).compile(fredkin())


class TestCompilationResult:
    def test_zero_swaps(self, result):
        assert result.num_swaps == 0

    def test_cz_count_matches_transpiled_base(self, result):
        base = transpile(fredkin()).count_ops()
        assert result.num_cz == base.get("cz", 0)
        assert result.num_u3 == base.get("u3", 0)

    def test_technique_and_name(self, result):
        assert result.technique == "parallax"
        assert result.circuit_name == "fredkin"

    def test_layers_cover_all_gates(self, result):
        total = sum(len(l.gates) for l in result.layers)
        assert total == result.num_cz + result.num_u3

    def test_runtime_is_layer_sum(self, result):
        assert result.runtime_us == pytest.approx(
            sum(l.time_us for l in result.layers)
        )

    def test_radii_consistent(self, result, spec):
        assert result.blockade_radius_um == pytest.approx(
            spec.blockade_factor * result.interaction_radius_um
        )

    def test_footprint_positive(self, result):
        rows, cols = result.footprint_sites
        assert rows >= 1 and cols >= 1

    def test_summary_keys(self, result):
        summary = result.summary()
        assert summary["technique"] == "parallax"
        assert summary["swaps"] == 0


class TestCompilerOptions:
    def test_layout_reuse(self, spec):
        basis = transpile(fredkin())
        layout = generate_layout(basis)
        config = ParallaxConfig(transpile_input=False)
        a = ParallaxCompiler(spec, config).compile(basis, layout=layout)
        b = ParallaxCompiler(spec, config).compile(basis, layout=layout)
        assert a.num_cz == b.num_cz
        assert a.runtime_us == pytest.approx(b.runtime_us)

    def test_mismatched_layout_rejected(self, spec):
        basis = transpile(fredkin())
        other = generate_layout(transpile(QuantumCircuit(5).cz(0, 4)))
        with pytest.raises(ValueError, match="layout has"):
            ParallaxCompiler(spec, ParallaxConfig(transpile_input=False)).compile(
                basis, layout=other
            )

    def test_pretranspiled_input(self, spec):
        basis = transpile(fredkin())
        result = ParallaxCompiler(
            spec, ParallaxConfig(transpile_input=False)
        ).compile(basis)
        assert result.num_cz == basis.count_ops()["cz"]

    def test_scheduler_config_forwarded(self, spec):
        config = ParallaxConfig(
            scheduler=SchedulerConfig(return_home=False, seed=5)
        )
        result = ParallaxCompiler(spec, config).compile(fredkin())
        assert all(l.return_distance_um == 0.0 for l in result.layers)

    def test_max_aod_atoms_cap(self, spec):
        config = ParallaxConfig(max_aod_atoms=1)
        result = ParallaxCompiler(spec, config).compile(fredkin())
        assert len(result.aod_qubits) <= 1

    def test_too_large_circuit_rejected(self, spec):
        c = QuantumCircuit(300)
        for i in range(299):
            c.cz(i, i + 1)
        with pytest.raises(ValueError):
            ParallaxCompiler(spec).compile(c)


class TestAcrossMachines:
    def test_cz_count_machine_independent(self):
        # Section IV: CZ counts and success are unaffected by machine size.
        circuit = fredkin()
        small = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(circuit)
        large = ParallaxCompiler(HardwareSpec.atom_computing()).compile(circuit)
        assert small.num_cz == large.num_cz
        assert small.num_u3 == large.num_u3
