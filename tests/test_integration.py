"""End-to-end integration tests across the whole pipeline.

These validate the cross-module invariants the paper's claims rest on:
QASM -> transpile -> layout -> Parallax/baselines -> noise/timing, on real
Table III workloads.
"""

import numpy as np
import pytest

from repro.baselines import EldiCompiler, GraphineCompiler
from repro.benchcircuits import get_benchmark
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.core.parallel_shots import parallelization_factor, total_execution_time_us
from repro.hardware.spec import HardwareSpec
from repro.noise import success_probability
from repro.qasm import parse_qasm, to_qasm
from repro.transpile import transpile

BENCHES = ("ADD", "ADV", "HLF", "QEC", "WST")


@pytest.fixture(scope="module")
def spec():
    return HardwareSpec.quera_aquila()


@pytest.fixture(scope="module")
def results(spec):
    out = {}
    for bench in BENCHES:
        basis = transpile(get_benchmark(bench))
        out[bench] = {
            "parallax": ParallaxCompiler(
                spec, ParallaxConfig(transpile_input=False)
            ).compile(basis),
            "eldi": EldiCompiler(spec).compile(basis),
            "graphine": GraphineCompiler(spec).compile(basis),
            "base_cz": basis.count_ops().get("cz", 0),
        }
    return out


class TestZeroSwapClaim:
    def test_parallax_cz_equals_base(self, results):
        for bench in BENCHES:
            assert results[bench]["parallax"].num_cz == results[bench]["base_cz"]

    def test_baselines_add_swap_overhead(self, results):
        added = 0
        for bench in BENCHES:
            for tech in ("eldi", "graphine"):
                result = results[bench][tech]
                assert result.num_cz == results[bench]["base_cz"] + 3 * result.num_swaps
                added += result.num_swaps
        assert added > 0  # at least some circuits need routing

    def test_parallax_minimum_everywhere(self, results):
        for bench in BENCHES:
            p = results[bench]["parallax"].num_cz
            assert p <= results[bench]["eldi"].num_cz
            assert p <= results[bench]["graphine"].num_cz


class TestSuccessOrdering:
    def test_average_improvement_positive(self, results):
        # Paper: +46% over Graphine, +28% over ELDI on average.  Exact
        # factors depend on the workload instances; the ordering must hold.
        ratios_g, ratios_e = [], []
        for bench in BENCHES:
            p = success_probability(results[bench]["parallax"])
            g = success_probability(results[bench]["graphine"])
            e = success_probability(results[bench]["eldi"])
            if g > 0:
                ratios_g.append(p / g)
            if e > 0:
                ratios_e.append(p / e)
        assert np.mean(ratios_g) >= 1.0
        assert np.mean(ratios_e) >= 1.0


class TestTrapChangeRarity:
    def test_both_slm_fraction_small(self, results):
        # Paper: both-SLM out-of-range CZs are ~1.3% of CZ gates overall.
        total_cz = sum(results[b]["parallax"].num_cz for b in BENCHES)
        total_both_slm = sum(results[b]["parallax"].both_slm_events for b in BENCHES)
        assert total_both_slm / total_cz < 0.10


class TestQasmRoundTripCompile:
    def test_qasm_export_import_compiles_identically(self, spec):
        basis = transpile(get_benchmark("ADV"))
        reparsed = parse_qasm(to_qasm(basis))
        reparsed.name = basis.name
        config = ParallaxConfig(transpile_input=False)
        a = ParallaxCompiler(spec, config).compile(basis)
        b = ParallaxCompiler(spec, config).compile(reparsed)
        assert a.num_cz == b.num_cz
        assert a.num_layers == b.num_layers


class TestParallelShotsIntegration:
    def test_small_circuit_parallelizes_more(self, results):
        spec_large = HardwareSpec.atom_computing()
        small = parallelization_factor(results["ADV"]["parallax"], spec_large)
        big = parallelization_factor(results["WST"]["parallax"], spec_large)
        assert small >= big

    def test_total_time_scales_down(self, results):
        spec_large = HardwareSpec.atom_computing()
        result = results["ADV"]["parallax"]
        serial = total_execution_time_us(result, 8000, factor=1, spec=spec_large)
        best = total_execution_time_us(result, 8000, spec=spec_large)
        assert best < serial


class TestMachineScaling:
    def test_tfim_runtime_improves_on_larger_machine(self):
        # The paper's TFIM story: 128 qubits are cramped on 256 sites and
        # the runtime drops substantially on the 1,225-site machine.
        basis = transpile(get_benchmark("TFIM"))
        config = ParallaxConfig(transpile_input=False)
        small = ParallaxCompiler(HardwareSpec.quera_aquila(), config).compile(basis)
        large = ParallaxCompiler(HardwareSpec.atom_computing(), config).compile(basis)
        assert large.runtime_us < small.runtime_us
        assert large.trap_change_events <= small.trap_change_events

    def test_cz_count_independent_of_machine(self):
        basis = transpile(get_benchmark("HLF"))
        config = ParallaxConfig(transpile_input=False)
        small = ParallaxCompiler(HardwareSpec.quera_aquila(), config).compile(basis)
        large = ParallaxCompiler(HardwareSpec.atom_computing(), config).compile(basis)
        assert small.num_cz == large.num_cz
