"""Tests for repro.qasm.parser."""

import math

import pytest

from repro.qasm.lexer import QasmSyntaxError
from repro.qasm.parser import parse_qasm

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestBasics:
    def test_minimal_program(self):
        c = parse_qasm(HEADER + "qreg q[3];\nh q[0];\ncx q[0], q[1];")
        assert c.num_qubits == 3
        assert [g.name for g in c] == ["h", "cx"]

    def test_header_optional(self):
        c = parse_qasm("qreg q[1]; x q[0];")
        assert len(c) == 1

    def test_unsupported_version_rejected(self):
        with pytest.raises(QasmSyntaxError, match="version"):
            parse_qasm("OPENQASM 3.0;")

    def test_unknown_include_rejected(self):
        with pytest.raises(QasmSyntaxError, match="qelib1"):
            parse_qasm(HEADER.replace("qelib1.inc", "other.inc") + "qreg q[1];")

    def test_multiple_registers_flattened(self):
        c = parse_qasm(HEADER + "qreg a[2]; qreg b[2]; cx a[1], b[0];")
        assert c.num_qubits == 4
        assert c[0].qubits == (1, 2)

    def test_duplicate_qreg_rejected(self):
        with pytest.raises(QasmSyntaxError, match="duplicate"):
            parse_qasm(HEADER + "qreg q[1]; qreg q[2];")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(QasmSyntaxError, match="out of range"):
            parse_qasm(HEADER + "qreg q[2]; x q[5];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmSyntaxError, match="unknown gate"):
            parse_qasm(HEADER + "qreg q[1]; frobnicate q[0];")

    def test_unknown_register_rejected(self):
        with pytest.raises(QasmSyntaxError, match="unknown qreg"):
            parse_qasm(HEADER + "qreg q[1]; x r[0];")


class TestParameters:
    def test_pi_expressions(self):
        c = parse_qasm(HEADER + "qreg q[1]; rz(pi/2) q[0]; rz(-pi/4) q[0]; rz(2*pi) q[0];")
        assert c[0].params[0] == pytest.approx(math.pi / 2)
        assert c[1].params[0] == pytest.approx(-math.pi / 4)
        assert c[2].params[0] == pytest.approx(2 * math.pi)

    def test_u3_three_params(self):
        c = parse_qasm(HEADER + "qreg q[1]; u3(pi/2, 0, pi) q[0];")
        assert c[0].params == pytest.approx((math.pi / 2, 0.0, math.pi))

    def test_arithmetic_precedence(self):
        c = parse_qasm(HEADER + "qreg q[1]; rz(1+2*3) q[0];")
        assert c[0].params[0] == pytest.approx(7.0)

    def test_parenthesized_expression(self):
        c = parse_qasm(HEADER + "qreg q[1]; rz((1+2)*3) q[0];")
        assert c[0].params[0] == pytest.approx(9.0)

    def test_power_operator(self):
        c = parse_qasm(HEADER + "qreg q[1]; rz(2^3) q[0];")
        assert c[0].params[0] == pytest.approx(8.0)

    def test_functions(self):
        c = parse_qasm(HEADER + "qreg q[1]; rz(cos(0)) q[0]; rz(sqrt(4)) q[0];")
        assert c[0].params[0] == pytest.approx(1.0)
        assert c[1].params[0] == pytest.approx(2.0)

    def test_scientific_notation(self):
        c = parse_qasm(HEADER + "qreg q[1]; rz(1.5e-2) q[0];")
        assert c[0].params[0] == pytest.approx(0.015)


class TestBroadcasting:
    def test_single_register_broadcast(self):
        c = parse_qasm(HEADER + "qreg q[3]; h q;")
        assert [g.qubits for g in c] == [(0,), (1,), (2,)]

    def test_two_register_broadcast(self):
        c = parse_qasm(HEADER + "qreg a[2]; qreg b[2]; cx a, b;")
        assert [g.qubits for g in c] == [(0, 2), (1, 3)]

    def test_mixed_broadcast_scalar_register(self):
        c = parse_qasm(HEADER + "qreg a[1]; qreg b[3]; cx a[0], b;")
        assert [g.qubits for g in c] == [(0, 1), (0, 2), (0, 3)]

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(QasmSyntaxError, match="mismatched"):
            parse_qasm(HEADER + "qreg a[2]; qreg b[3]; cx a, b;")


class TestCustomGates:
    def test_definition_expanded_inline(self):
        src = HEADER + (
            "qreg q[2];\n"
            "gate bell a, b { h a; cx a, b; }\n"
            "bell q[0], q[1];"
        )
        c = parse_qasm(src)
        assert [g.name for g in c] == ["h", "cx"]

    def test_parameterized_definition(self):
        src = HEADER + (
            "qreg q[1];\n"
            "gate tilt(t) a { rz(t/2) a; }\n"
            "tilt(pi) q[0];"
        )
        c = parse_qasm(src)
        assert c[0].params[0] == pytest.approx(math.pi / 2)

    def test_nested_definitions(self):
        src = HEADER + (
            "qreg q[2];\n"
            "gate inner a { x a; }\n"
            "gate outer a, b { inner a; cx a, b; }\n"
            "outer q[0], q[1];"
        )
        c = parse_qasm(src)
        assert [g.name for g in c] == ["x", "cx"]

    def test_wrong_arg_count_rejected(self):
        src = HEADER + "qreg q[2]; gate g1 a { x a; } g1 q[0], q[1];"
        with pytest.raises(QasmSyntaxError, match="expects 1"):
            parse_qasm(src)

    def test_barrier_in_body_ignored(self):
        src = HEADER + "qreg q[1]; gate g1 a { x a; barrier a; x a; } g1 q[0];"
        c = parse_qasm(src)
        assert [g.name for g in c] == ["x", "x"]


class TestStructural:
    def test_barrier_recorded(self):
        c = parse_qasm(HEADER + "qreg q[2]; barrier q;")
        assert [g.name for g in c] == ["barrier", "barrier"]

    def test_measure_recorded(self):
        c = parse_qasm(HEADER + "qreg q[2]; creg c[2]; measure q -> c;")
        assert [g.name for g in c] == ["measure", "measure"]

    def test_measure_single(self):
        c = parse_qasm(HEADER + "qreg q[2]; creg c[2]; measure q[1] -> c[1];")
        assert c[0].qubits == (1,)

    def test_reset_unsupported(self):
        with pytest.raises(QasmSyntaxError, match="reset"):
            parse_qasm(HEADER + "qreg q[1]; reset q[0];")

    def test_opaque_unsupported(self):
        with pytest.raises(QasmSyntaxError, match="opaque"):
            parse_qasm(HEADER + "opaque magic a;")

    def test_if_unsupported(self):
        with pytest.raises(QasmSyntaxError, match="classically"):
            parse_qasm(HEADER + "qreg q[1]; creg c[1]; if (c==1) x q[0];")
