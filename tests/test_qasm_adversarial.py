"""Adversarial QASM inputs: every malformed program must die with a
:class:`QasmSyntaxError` carrying a line (and usually a column) -- never a
raw ``RecursionError``/``IndexError``/``KeyError``/``ValueError`` traceback.

Organised as Cirq-style case families.  Each case is (source, message
fragment); the shared assertion checks the exception type, the message,
and that the position attributes are populated.
"""

import sys

import pytest

from repro.qasm.lexer import QasmSyntaxError, tokenize
from repro.qasm.parser import (
    MAX_EXPR_DEPTH,
    MAX_GATE_EXPANSION_DEPTH,
    MAX_REGISTER_SIZE,
    load_file,
    parse_qasm,
)

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def assert_rejects(source: str, fragment: str) -> QasmSyntaxError:
    """Parse must fail with a positioned QasmSyntaxError mentioning fragment."""
    with pytest.raises(QasmSyntaxError) as info:
        parse_qasm(source)
    err = info.value
    assert fragment in str(err), f"{fragment!r} not in {err}"
    assert isinstance(err.line, int) and err.line >= 0
    assert isinstance(err.col, int) and err.col >= 0
    return err


class TestVersionLine:
    @pytest.mark.parametrize(
        "source",
        [
            "OPENQASM 3.0;\nqreg q[1];",
            "OPENQASM 2.1;\nqreg q[1];",
            "OPENQASM 1.0;\nqreg q[1];",
        ],
    )
    def test_unsupported_versions(self, source):
        assert_rejects(source, "version")

    def test_version_not_a_number(self):
        assert_rejects("OPENQASM banana;\nqreg q[1];", "version")

    def test_version_is_a_string(self):
        assert_rejects('OPENQASM "2.0";\nqreg q[1];', "version")

    def test_missing_semicolon(self):
        assert_rejects("OPENQASM 2.0\nqreg q[1];\nx q[0];", ";")


class TestIncludes:
    def test_unknown_include(self):
        assert_rejects(HEADER.replace("qelib1.inc", "notreal.inc"), "qelib1")

    def test_include_without_string(self):
        assert_rejects("OPENQASM 2.0;\ninclude qelib1;\nqreg q[1];", "string")


class TestRegisterDeclarations:
    def test_duplicate_qreg(self):
        assert_rejects(HEADER + "qreg q[1];\nqreg q[2];", "duplicate")

    def test_duplicate_creg(self):
        assert_rejects(HEADER + "qreg q[1];\ncreg c[1];\ncreg c[2];", "duplicate")

    def test_qreg_creg_name_collision(self):
        assert_rejects(HEADER + "qreg r[1];\ncreg r[1];", "duplicate")

    def test_creg_qreg_name_collision(self):
        assert_rejects(HEADER + "creg r[1];\nqreg r[1];", "duplicate")

    def test_undeclared_register_use(self):
        assert_rejects(HEADER + "qreg q[1];\nx nope[0];", "nope")

    def test_zero_size_register(self):
        assert_rejects(HEADER + "qreg q[0];", "size")

    def test_negative_looking_size(self):
        # '-' is not part of an int token; must be a syntax error, not a
        # register of negative size.
        assert_rejects(HEADER + "qreg q[-1];", "")

    def test_huge_register_size(self):
        err = assert_rejects(
            HEADER + f"qreg q[{MAX_REGISTER_SIZE + 1}];", "size"
        )
        assert err.line == 3


class TestArityAndBroadcast:
    def test_wrong_arity_standard_gate(self):
        assert_rejects(HEADER + "qreg q[3];\ncx q[0];", "")

    def test_out_of_range_index(self):
        err = assert_rejects(HEADER + "qreg q[2];\nx q[2];", "out of range")
        assert err.line == 4

    def test_out_of_range_index_in_broadcast(self):
        # Regression: broadcasting used to resolve whole-register operands
        # without validating the indexed one it was zipped against.
        assert_rejects(HEADER + "qreg a[2];\nqreg b[2];\ncx a, b[5];", "out of range")

    def test_mismatched_broadcast_sizes(self):
        assert_rejects(
            HEADER + "qreg a[2];\nqreg b[3];\ncx a, b;", "mismatched"
        )

    def test_duplicate_qubit_operand(self):
        assert_rejects(HEADER + "qreg q[2];\ncx q[0], q[0];", "")

    def test_measure_unknown_creg(self):
        assert_rejects(
            HEADER + "qreg q[1];\nmeasure q[0] -> nope[0];", "nope"
        )

    def test_measure_out_of_range_creg_index(self):
        assert_rejects(
            HEADER + "qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[7];",
            "out of range",
        )

    def test_measure_width_mismatch(self):
        assert_rejects(
            HEADER + "qreg q[3];\ncreg c[2];\nmeasure q -> c;", "classical"
        )


class TestUnterminatedConstructs:
    def test_unterminated_block_comment_at_eof(self):
        err = assert_rejects(HEADER + "qreg q[1];\n/* no end", "block comment")
        assert err.line == 4

    def test_unterminated_block_comment_only(self):
        assert_rejects("/*", "block comment")

    def test_unterminated_string_literal(self):
        assert_rejects('OPENQASM 2.0;\ninclude "qelib1.inc;\n', "string")

    def test_unterminated_gate_body(self):
        assert_rejects(
            HEADER + "qreg q[1];\ngate g a { x a;", ""
        )

    def test_statement_cut_at_eof(self):
        assert_rejects(HEADER + "qreg q[2];\ncx q[0],", "")


class TestGateDefinitions:
    def test_self_recursive_gate(self):
        err = assert_rejects(
            HEADER + "qreg q[1];\ngate g a { g a; }\ng q[0];", "recursive"
        )
        assert err.line == 4

    def test_forward_reference(self):
        assert_rejects(
            HEADER + "gate f a { g a; }\ngate g a { x a; }\n"
            "qreg q[1];\nf q[0];",
            "recursive and forward references",
        )

    def test_mutual_recursion(self):
        # Mutual recursion requires a forward reference, so the static
        # definition-time check catches it too.
        assert_rejects(
            HEADER + "gate f a { g a; }\ngate g a { f a; }\n"
            "qreg q[1];\nf q[0];",
            "",
        )

    def test_redefining_standard_gate(self):
        assert_rejects(HEADER + "gate cx a, b { CX a, b; }", "")

    def test_redefining_custom_gate(self):
        assert_rejects(
            HEADER + "gate g a { x a; }\ngate g a { y a; }", ""
        )

    def test_duplicate_gate_params(self):
        assert_rejects(HEADER + "gate g(t, t) a { rz(t) a; }", "duplicate")

    def test_duplicate_gate_qargs(self):
        assert_rejects(HEADER + "gate g a, a { cx a, a; }", "duplicate")

    def test_wrong_param_count_at_call(self):
        assert_rejects(
            HEADER + "qreg q[1];\ngate g(t) a { rz(t) a; }\ng q[0];",
            "params",
        )

    def test_deep_linear_expansion_chain(self):
        # g0 -> g1 -> ... -> gN, each legal on its own; expansion must stop
        # at MAX_GATE_EXPANSION_DEPTH with a positioned error, not blow the
        # interpreter stack.
        depth = MAX_GATE_EXPANSION_DEPTH + 8
        lines = [HEADER + "qreg q[1];", "gate g0 a { x a; }"]
        for i in range(1, depth):
            lines.append(f"gate g{i} a {{ g{i - 1} a; }}")
        lines.append(f"g{depth - 1} q[0];")
        assert_rejects("\n".join(lines), "expansion")


class TestPathologicalLiterals:
    def test_huge_int_literal(self):
        # Python >= 3.11 caps str->int conversion; either way this must not
        # escape as a bare ValueError.
        digits = "9" * 10_000
        with pytest.raises((QasmSyntaxError, Exception)) as info:
            parse_qasm(HEADER + f"qreg q[{digits}];")
        assert isinstance(info.value, QasmSyntaxError)

    def test_huge_exponent_float(self):
        # 1e999999 overflows float conversion paths differently across
        # platforms; it must not crash the parser.
        source = HEADER + "qreg q[1];\nrz(1e999999) q[0];"
        try:
            circuit = parse_qasm(source)
        except QasmSyntaxError:
            return
        assert len(circuit) == 1

    def test_division_by_zero(self):
        assert_rejects(HEADER + "qreg q[1];\nrz(1/0) q[0];", "expression")

    def test_power_overflow(self):
        assert_rejects(
            HEADER + "qreg q[1];\nrz(9999999^9999999) q[0];", "expression"
        )

    def test_deeply_nested_parens(self):
        depth = MAX_EXPR_DEPTH + 50
        expr = "(" * depth + "1" + ")" * depth
        err = assert_rejects(HEADER + f"qreg q[1];\nrz({expr}) q[0];", "")
        assert isinstance(err, QasmSyntaxError)

    def test_unary_minus_chain(self):
        depth = MAX_EXPR_DEPTH + 50
        expr = "-" * depth + "1"
        assert_rejects(HEADER + f"qreg q[1];\nrz({expr}) q[0];", "")

    def test_moderate_nesting_still_parses(self):
        depth = 50
        expr = "(" * depth + "pi" + ")" * depth
        circuit = parse_qasm(HEADER + f"qreg q[1];\nrz({expr}) q[0];")
        assert len(circuit) == 1

    def test_pathological_whitespace(self):
        source = (
            "OPENQASM\t \t2.0 ;\n\n\n  include\t\"qelib1.inc\" ;\r\n"
            "qreg\n q\n [\n 2\n ]\n ;\n cx\tq[0]\t,\tq[1]\t;"
        )
        circuit = parse_qasm(source)
        assert [g.name for g in circuit] == ["cx"]

    def test_null_bytes(self):
        with pytest.raises(QasmSyntaxError):
            parse_qasm("OPENQASM 2.0;\x00qreg q[1];")


class TestEmptyAndDegenerate:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "\n\n\n",
            "// only a comment\n",
            "/* only a block comment */",
            "OPENQASM 2.0;",
            HEADER,
        ],
    )
    def test_no_content_rejected(self, source):
        assert_rejects(source, "")

    def test_empty_file_via_load_file(self, tmp_path):
        # Regression: load_file used to crash on empty input.
        path = tmp_path / "empty.qasm"
        path.write_text("")
        with pytest.raises(QasmSyntaxError):
            load_file(str(path))

    def test_comment_only_file_via_load_file(self, tmp_path):
        path = tmp_path / "comments.qasm"
        path.write_text("// nothing here\n// at all\n")
        with pytest.raises(QasmSyntaxError):
            load_file(str(path))

    def test_non_utf8_file(self, tmp_path):
        path = tmp_path / "binary.qasm"
        path.write_bytes(b"\xff\xfe\x00OPENQASM")
        with pytest.raises(QasmSyntaxError, match="UTF-8"):
            load_file(str(path))


class TestPositions:
    def test_line_and_column_point_at_offender(self):
        err = assert_rejects(HEADER + "qreg q[1];\nx q[9];", "out of range")
        assert err.line == 4

    def test_lexer_reports_columns(self):
        with pytest.raises(QasmSyntaxError) as info:
            list(tokenize("qreg q[1];\n  $"))
        assert info.value.line == 2
        assert info.value.col == 3

    def test_block_comment_lines_counted(self):
        err = assert_rejects(
            "OPENQASM 2.0;\n/* one\ntwo\nthree */\nqreg q[1];\nx q[9];",
            "out of range",
        )
        assert err.line == 6

    def test_recursion_error_net(self):
        # Even if some construct slips past the depth guards, parse_qasm
        # converts interpreter RecursionError into a QasmSyntaxError.
        limit = sys.getrecursionlimit()
        depth = limit * 2
        expr = "(" * depth + "1" + ")" * depth
        with pytest.raises(QasmSyntaxError):
            parse_qasm(HEADER + f"qreg q[1];\nrz({expr}) q[0];")
