"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, derive_rng


class TestEnsureRng:
    def test_none_gives_deterministic_default(self):
        a = ensure_rng(None).integers(0, 1000, size=5)
        b = ensure_rng(None).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(4)
        b = ensure_rng(42).random(4)
        assert np.array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = ensure_rng(1).random(8)
        b = ensure_rng(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_returns_generator_type(self):
        assert isinstance(ensure_rng(3), np.random.Generator)


class TestDeriveRng:
    def test_child_streams_are_independent(self):
        parent1 = ensure_rng(5)
        parent2 = ensure_rng(5)
        child_a = derive_rng(parent1, 0)
        child_b = derive_rng(parent2, 1)
        assert not np.array_equal(child_a.random(8), child_b.random(8))

    def test_same_stream_same_draws(self):
        a = derive_rng(ensure_rng(5), 3).random(8)
        b = derive_rng(ensure_rng(5), 3).random(8)
        assert np.array_equal(a, b)

    def test_derivation_consumes_parent_state(self):
        parent = ensure_rng(5)
        before = parent.bit_generator.state["state"]["state"]
        derive_rng(parent, 0)
        after = parent.bit_generator.state["state"]["state"]
        assert before != after
