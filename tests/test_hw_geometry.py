"""Tests for repro.hardware.geometry."""

import numpy as np
import pytest

from repro.hardware.geometry import (
    euclidean,
    min_pairwise_separation,
    neighbors_within,
    pairwise_distances,
    within_radius_pairs,
)


class TestEuclidean:
    def test_pythagorean(self):
        assert euclidean(np.array([0, 0]), np.array([3, 4])) == pytest.approx(5.0)

    def test_zero_distance(self):
        p = np.array([1.5, -2.5])
        assert euclidean(p, p) == 0.0


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self):
        pos = np.array([[0, 0], [1, 0], [0, 2]], dtype=float)
        d = pairwise_distances(pos)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_values(self):
        pos = np.array([[0, 0], [3, 4]], dtype=float)
        assert pairwise_distances(pos)[0, 1] == pytest.approx(5.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            pairwise_distances(np.zeros((3, 3)))

    def test_single_point(self):
        d = pairwise_distances(np.array([[1.0, 1.0]]))
        assert d.shape == (1, 1)


class TestWithinRadiusPairs:
    def test_finds_close_pairs_only(self):
        pos = np.array([[0, 0], [1, 0], [10, 0]], dtype=float)
        assert within_radius_pairs(pos, 1.5) == [(0, 1)]

    def test_radius_inclusive(self):
        pos = np.array([[0, 0], [2, 0]], dtype=float)
        assert within_radius_pairs(pos, 2.0) == [(0, 1)]

    def test_ordered_i_less_than_j(self):
        pos = np.random.default_rng(0).random((6, 2)) * 3
        for i, j in within_radius_pairs(pos, 2.0):
            assert i < j

    def test_empty_input(self):
        assert within_radius_pairs(np.zeros((0, 2)), 1.0) == []


class TestMinPairwiseSeparation:
    def test_simple(self):
        pos = np.array([[0, 0], [1, 0], [5, 0]], dtype=float)
        assert min_pairwise_separation(pos) == pytest.approx(1.0)

    def test_single_point_infinite(self):
        assert min_pairwise_separation(np.array([[0.0, 0.0]])) == float("inf")

    def test_empty_infinite(self):
        assert min_pairwise_separation(np.zeros((0, 2))) == float("inf")


class TestNeighborsWithin:
    def test_finds_neighbors(self):
        pos = np.array([[0, 0], [1, 0], [3, 0]], dtype=float)
        idx = neighbors_within(pos, np.array([0.0, 0.0]), 1.5)
        assert set(idx.tolist()) == {0, 1}

    def test_exclude_self(self):
        pos = np.array([[0, 0], [1, 0]], dtype=float)
        idx = neighbors_within(pos, pos[0], 1.5, exclude=0)
        assert set(idx.tolist()) == {1}

    def test_none_in_range(self):
        pos = np.array([[10, 10]], dtype=float)
        assert neighbors_within(pos, np.array([0.0, 0.0]), 1.0).size == 0
