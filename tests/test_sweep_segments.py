"""Packed segment backend: integrity, compaction, and analysis parity.

Every failure mode must degrade to *missing-with-warning* -- truncated
tails, checksum mismatches, manifests pointing at vanished segments,
compactions killed at any point -- because a wedged ``--resume`` or a
crashing ``analyze`` loses more data than the damaged records ever held.
"""

import hashlib
import warnings

import pytest

from repro.sweeps import CompactionReport, ResultTable, SweepStore
from repro.sweeps import segments as seg
from repro.sweeps.engine import EvalTask, evaluate_tasks
from repro.sweeps.store import SCHEMA_VERSION


def record_for(i: int) -> tuple[str, dict]:
    """One synthetic but schema-complete sweep record."""
    key = hashlib.sha256(f"segrec{i}".encode()).hexdigest()
    return key, {
        "scenario": {
            "benchmark": "ADD" if i % 2 else "QAOA",
            "technique": ("parallax", "graphine", "eldi")[i % 3],
            "shots": 100,
            "seed": 1000 + i,
            "spec_name": "quera_aquila",
            "spec_overrides": {"cz_error": 0.001 * (1 + i % 4)},
            "noise": {"include_readout": bool(i % 2)},
            "fingerprints": {"circuit": "c" * 8, "spec": "s" * 8, "config": "g" * 8},
        },
        "result": {
            "num_cz": 10 + i, "num_u3": 5, "num_ccz": 0, "num_swaps": 1,
            "num_moves": 2, "trap_change_events": 0, "num_layers": 4,
            "runtime_us": 12.5 + i,
        },
        "outcome": {
            "shots": 100, "successes": 90 - i, "gate_failures": 5,
            "movement_failures": 3, "decoherence_failures": 1,
            "readout_failures": 1 + i, "success_rate": (90 - i) / 100.0,
            "stderr": 0.03,
        },
        "analytic_success": 0.9 - 0.01 * i,
    }


def filled_store(directory, n=8) -> tuple[SweepStore, list[str]]:
    store = SweepStore(directory)
    keys = []
    for i in range(n):
        key, record = record_for(i)
        store.put(key, record)
        keys.append(key)
    return store, keys


def segment_files(directory):
    return sorted(directory.glob("segment-*.seg"))


class TestCompaction:
    def test_round_trip_preserves_records_exactly(self, tmp_path):
        store, keys = filled_store(tmp_path / "s")
        before = list(store.records())
        report = store.compact()
        assert report == CompactionReport(
            sealed=8, deduped=0, skipped=0, segment="segment-000001.seg"
        )
        packed = SweepStore(tmp_path / "s")
        assert list(packed.records()) == before
        for record in before:
            assert packed.get(record["key"]) == record
            assert record["key"] in packed
        assert len(packed) == 8

    def test_loose_files_removed_after_seal(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        store.compact()
        stats = store.stats()
        assert (stats.loose, stats.sealed, stats.segments) == (0, 8, 1)

    def test_idempotent(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        store.compact()
        again = store.compact()
        assert again.sealed == 0 and again.segment is None
        assert len(segment_files(tmp_path / "s")) == 1

    def test_partial_compaction_by_keys(self, tmp_path):
        store, keys = filled_store(tmp_path / "s")
        report = store.compact(keys=keys[:3])
        assert report.sealed == 3
        stats = store.stats()
        assert (stats.loose, stats.sealed) == (5, 3)
        # Mixed store still answers everything.
        assert len(list(store.records())) == 8

    def test_recompaction_after_kill_before_manifest_swap(self, tmp_path):
        # A compactor killed after writing its segment but before the
        # manifest swap leaves an orphan segment and every loose file; the
        # rerun seals everything into a fresh segment and never reads the
        # orphan.
        store, keys = filled_store(tmp_path / "s")
        records = sorted(
            (store.get(k) for k in keys), key=lambda r: r["key"]
        )
        assert seg.write_segment(tmp_path / "s", records) is not None  # orphan
        report = SweepStore(tmp_path / "s").compact()
        assert report.sealed == 8
        assert report.segment == "segment-000002.seg"
        assert len(list(SweepStore(tmp_path / "s").records())) == 8

    def test_recompaction_after_kill_after_manifest_swap(self, tmp_path):
        # Killed between manifest swap and loose cleanup: the next pass
        # recognises the already-sealed keys and just removes duplicates.
        store, keys = filled_store(tmp_path / "s")
        store.compact()
        _, record = record_for(0)
        store.put(keys[0], record)  # resurrect one loose duplicate
        report = SweepStore(tmp_path / "s").compact()
        assert report.sealed == 0 and report.deduped == 1
        assert not store.path(keys[0]).exists()

    def test_unreadable_loose_files_skipped_not_destroyed(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        bad = tmp_path / "s" / ("ab" * 20 + ".json")
        bad.write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable record"):
            report = store.compact()
        assert report.sealed == 8 and report.skipped == 1
        assert bad.exists()

    def test_concurrent_writer_untouched(self, tmp_path):
        # A record written between gather and cleanup (here: simply not in
        # the keys subset) must survive compaction untouched.
        store, keys = filled_store(tmp_path / "s")
        store.compact(keys=keys[1:])
        assert store.path(keys[0]).exists()
        assert store.get(keys[0]) is not None

    def test_held_lock_skips_compaction_without_data_loss(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        (tmp_path / "s" / "COMPACT.lock").write_text("12345", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="another compaction"):
            report = store.compact()
        assert report == CompactionReport(
            sealed=0, deduped=0, skipped=0, segment=None
        )
        assert store.stats().loose == 8  # nothing touched
        assert (tmp_path / "s" / "COMPACT.lock").exists()  # not ours to break

    def test_stale_lock_is_broken(self, tmp_path):
        import os
        import time

        store, _ = filled_store(tmp_path / "s")
        lock = tmp_path / "s" / "COMPACT.lock"
        lock.write_text("12345", encoding="utf-8")
        stale = time.time() - 2 * SweepStore._LOCK_STALE_S
        os.utime(lock, (stale, stale))
        report = store.compact()
        assert report.sealed == 8
        assert not lock.exists()

    def test_keyed_compaction_parses_only_its_own_files(self, tmp_path):
        # The --seal path compacts one chunk at a time; each pass must
        # visit only the chunk's files, not re-parse the whole directory
        # (which would be quadratic over a long sweep).
        store, keys = filled_store(tmp_path / "s", n=10)
        loads = []
        original = SweepStore._load

        def counting_load(self, path):
            loads.append(path.name)
            return original(self, path)

        try:
            SweepStore._load = counting_load
            store.compact(keys=keys[:2])
        finally:
            SweepStore._load = original
        assert len(loads) == 2

    def test_foreign_generation_loose_record_not_resumed(self, tmp_path):
        # get() must apply the same generation gate as records(): a stale
        # record must be recomputed, not silently resumed into a sweep
        # that analyze will then drop it from.
        import json

        store, _ = filled_store(tmp_path / "s", n=1)
        key, record = record_for(0)
        stale = {**record, "schema_version": SCHEMA_VERSION,
                 "engine_version": "0.0.1", "key": key}
        store.path(key).write_text(json.dumps(stale), encoding="utf-8")
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="engine '0.0.1'"):
            assert fresh.get(key) is None

    def test_clear_removes_segments_and_manifest(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        store.compact()
        store.clear()
        assert len(store) == 0
        assert not segment_files(tmp_path / "s")
        assert not (tmp_path / "s" / seg.MANIFEST_NAME).exists()


class TestIntegrity:
    def test_truncated_tail_mid_record(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        store.compact()
        path = segment_files(tmp_path / "s")[0]
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="truncated"):
            kept = list(fresh.records())
        assert 0 < len(kept) < 8  # the intact prefix survives

    def test_truncated_tail_key_reads_missing_not_crashing(self, tmp_path):
        store, keys = filled_store(tmp_path / "s")
        store.compact()
        path = segment_files(tmp_path / "s")[0]
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        fresh = SweepStore(tmp_path / "s")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            kept_keys = {r["key"] for r in fresh.records()}
            for key in keys:
                record = fresh.get(key)
                assert (record is not None) == (key in kept_keys)

    def test_checksum_mismatch_drops_only_that_record(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        store.compact()
        path = segment_files(tmp_path / "s")[0]
        data = bytearray(path.read_bytes())
        index = data.find(b'"analytic_success"')
        data[index + 2] ^= 0x01
        path.write_bytes(bytes(data))
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="checksum"):
            kept = list(fresh.records())
        assert len(kept) == 7

    def test_manifest_pointing_at_missing_segment(self, tmp_path):
        store, keys = filled_store(tmp_path / "s")
        store.compact()
        segment_files(tmp_path / "s")[0].unlink()
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="missing segment"):
            assert list(fresh.records()) == []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert fresh.get(keys[0]) is None
            assert len(ResultTable.from_store(SweepStore(tmp_path / "s"))) == 0

    def test_corrupt_manifest_leaves_loose_records_readable(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        (tmp_path / "s" / seg.MANIFEST_NAME).write_text("{broken", encoding="utf-8")
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="manifest"):
            assert len(list(fresh.records())) == 8

    def test_damaged_columnar_block_falls_back_to_frames(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        with seg.use_sidecars(False):
            store.compact()
        path = segment_files(tmp_path / "s")[0]
        data = bytearray(path.read_bytes())
        index = data.find(b'"names":')
        data[index + 2] ^= 0x01
        path.write_bytes(bytes(data))
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="columnar block"):
            table = ResultTable.from_store(fresh)
        assert len(table) == 8  # frames still intact

    def test_warning_fires_once_per_problem_per_store(self, tmp_path):
        store, keys = filled_store(tmp_path / "s")
        store.compact()
        segment_files(tmp_path / "s")[0].unlink()
        fresh = SweepStore(tmp_path / "s")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            list(fresh.records())
            list(fresh.records())
            fresh.get(keys[0])
            fresh.get(keys[1])
        assert len(caught) == 1

    def test_foreign_generation_manifest_skipped_whole(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        store.compact()
        manifest = seg.load_manifest(tmp_path / "s")
        stale = seg.Manifest(
            entries=manifest.entries,
            segments=manifest.segments,
            schema_version=SCHEMA_VERSION,
            engine_version="0.0.1",
        )
        assert seg.write_manifest(tmp_path / "s", stale)
        fresh = SweepStore(tmp_path / "s")
        with pytest.warns(RuntimeWarning, match="engine '0.0.1'"):
            assert list(fresh.records()) == []


class TestAnalysisParity:
    def test_csv_identical_loose_packed_mixed(self, tmp_path):
        store, keys = filled_store(tmp_path / "s", n=12)
        csv_loose = ResultTable.from_store(store).to_csv()
        store.compact(keys=keys[:6])
        csv_mixed = ResultTable.from_store(SweepStore(tmp_path / "s")).to_csv()
        SweepStore(tmp_path / "s").compact()
        csv_packed = ResultTable.from_store(SweepStore(tmp_path / "s")).to_csv()
        assert csv_mixed == csv_loose
        assert csv_packed == csv_loose

    def test_multi_segment_store_merges_in_key_order(self, tmp_path):
        store, keys = filled_store(tmp_path / "s", n=9)
        store.compact(keys=keys[:3])
        SweepStore(tmp_path / "s").compact(keys=keys[3:6])
        SweepStore(tmp_path / "s").compact()
        packed = SweepStore(tmp_path / "s")
        assert len(segment_files(tmp_path / "s")) == 3
        table = ResultTable.from_store(packed)
        assert len(table) == 9
        ordered = [r["key"] for r in packed.records()]
        assert ordered == sorted(ordered)

    def test_loose_record_wins_over_sealed_twin(self, tmp_path):
        store, keys = filled_store(tmp_path / "s")
        store.compact()
        _, record = record_for(0)
        record["analytic_success"] = 0.123456
        store.put(keys[0], record)
        fresh = SweepStore(tmp_path / "s")
        assert fresh.get(keys[0])["analytic_success"] == 0.123456
        by_key = {r["key"]: r for r in fresh.records()}
        assert by_key[keys[0]]["analytic_success"] == 0.123456
        table = ResultTable.from_store(SweepStore(tmp_path / "s"))
        assert 0.123456 in table.column("analytic_success")

    def test_fast_path_actually_engages(self, tmp_path):
        store, _ = filled_store(tmp_path / "s")
        assert store.analysis_columns() is None  # loose-only: classic path
        store.compact()
        packed = SweepStore(tmp_path / "s")
        names, columns = packed.analysis_columns()
        assert "analytic_success" in names
        assert all(len(col) == 8 for col in columns)


class TestSegmentFormat:
    def test_payloads_are_canonical_store_bytes(self, tmp_path):
        # The sealed payload must be byte-identical to the loose file it
        # replaced -- that is what keeps --resume byte-for-byte exact.
        store, keys = filled_store(tmp_path / "s", n=3)
        loose_bytes = {
            key: store.path(key).read_bytes() for key in keys
        }
        store.compact()
        path = segment_files(tmp_path / "s")[0]
        data = path.read_bytes()
        found = dict(seg.iter_segment_records(data, path.name))
        from repro.core.serialize import canonical_dumps

        for key in keys:
            assert canonical_dumps(found[key]).encode() == loose_bytes[key]

    def test_segment_names_never_collide(self, tmp_path):
        store, keys = filled_store(tmp_path / "s", n=4)
        store.compact(keys=keys[:2])
        SweepStore(tmp_path / "s").compact()
        names = [p.name for p in segment_files(tmp_path / "s")]
        assert names == ["segment-000001.seg", "segment-000002.seg"]


class TestEngineSealing:
    def test_seal_during_evaluation(self, tmp_path):
        # evaluate_tasks(seal=True) must leave a packed store whose records
        # equal the unsealed run's.
        from repro.experiments.common import clear_caches
        from repro.sweeps.grid import SweepGrid
        from repro.sweeps.runner import run_sweep

        clear_caches()
        grid = SweepGrid(
            benchmarks=("ADD",),
            techniques=("parallax",),
            spec_axes={"cz_error": (0.002, 0.004)},
            shots=50,
            base_seed=7,
        )
        plain = run_sweep(grid, SweepStore(tmp_path / "plain"))
        sealed = run_sweep(grid, SweepStore(tmp_path / "sealed"), seal=True)
        assert sealed.records == plain.records
        stats = SweepStore(tmp_path / "sealed").stats()
        assert stats.loose == 0 and stats.sealed == 2
        # Resume over the packed store is a no-op.
        again = run_sweep(
            grid, SweepStore(tmp_path / "sealed"), resume=True, seal=True
        )
        assert again.computed == 0 and again.resumed == 2
        assert again.records == plain.records

    def test_evaluate_tasks_seal_without_store_is_noop(self):
        assert evaluate_tasks([], store=None, seal=True) == []


class TestCompactCLI:
    def test_compact_subcommand(self, tmp_path, capsys):
        from repro.sweeps.__main__ import main

        store, _ = filled_store(tmp_path / "s")
        assert main(["compact", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "COMPACT sealed=8 deduped=0 skipped=0" in out
        assert main(["compact", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "COMPACT sealed=0" in out

    def test_run_prints_stable_resume_line(self, tmp_path, capsys):
        from repro.experiments.common import clear_caches
        from repro.sweeps.__main__ import main

        clear_caches()
        args = [
            "--benchmarks", "ADD", "--techniques", "parallax",
            "--spec-axis", "cz_error=0.002,0.004", "--noise-axis",
            "include_readout=true", "--shots", "50",
            "--store", str(tmp_path / "s"), "--quiet",
        ]
        assert main(args) == 0
        assert "RESUME computed=2 resumed=0" in capsys.readouterr().out
        assert main([*args, "--resume"]) == 0
        assert "RESUME computed=0 resumed=2" in capsys.readouterr().out

    def test_seal_requires_store(self):
        from repro.sweeps.__main__ import main

        with pytest.raises(SystemExit):
            main(["--seal"])
