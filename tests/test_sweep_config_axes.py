"""Technique-config sweep axes: store keying, back-compat, byte-identity.

The config axis folds compiler knobs (placement method/seed, router
strategy/window, scheduler seed, return-home) into the sweep grid.  The
laws under test:

- scenarios differing only in a config axis get **distinct store keys and
  seeds** -- even for techniques whose config type ignores the knob (the
  key must separate them, not the config fingerprint);
- **configless grids are byte-identical** to what older engines produced:
  same seeds, same keys, same record bytes -- so old stores resume as
  no-ops and records without the ``config_overrides`` field still load;
- resume and multi-worker runs over a config grid reproduce the
  single-process store **byte for byte**, down to the analyze CSV.
"""

import dataclasses
import json

import pytest

from repro.experiments.common import ExperimentSettings, clear_caches
from repro.sweeps import SweepGrid, SweepStore, run_sweep, scenario_key
from repro.sweeps.analysis import ResultTable
from repro.sweeps.grid import CONFIG_AXIS_FIELDS


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def config_grid(**kwargs):
    defaults = dict(
        benchmarks=("ADD",),
        techniques=("parallax",),
        config_axes={"placement_seed": (0, 1)},
        shots=200,
        base_seed=7,
    )
    defaults.update(kwargs)
    return SweepGrid(**defaults)


class TestGridExpansion:
    def test_config_axes_multiply_size(self):
        grid = config_grid(
            config_axes={
                "placement_seed": (0, 1),
                "return_home": (True, False),
            }
        )
        assert grid.size == 4
        assert len(grid.scenarios()) == 4

    def test_unknown_config_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown config axis"):
            config_grid(config_axes={"optimism": (1, 2)})

    def test_empty_config_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            config_grid(config_axes={"placement_seed": ()})

    def test_axis_fields_exist_on_experiment_settings(self):
        # CONFIG_AXIS_FIELDS is a literal in grid.py (the grid must not
        # import the experiments layer); this pins it to reality.
        settings_fields = {f.name for f in dataclasses.fields(ExperimentSettings)}
        assert set(CONFIG_AXIS_FIELDS) <= settings_fields

    def test_overrides_recorded_on_scenario(self):
        scenarios = config_grid().scenarios()
        assert [dict(s.config_overrides) for s in scenarios] == [
            {"placement_seed": 0},
            {"placement_seed": 1},
        ]

    def test_describe_names_config_overrides(self):
        description = config_grid().scenarios()[1].describe()
        assert "placement_seed=1" in description


class TestKeying:
    def test_config_axis_separates_keys_and_seeds(self):
        a, b = config_grid().scenarios()
        assert scenario_key(a, "cfp", "gfp") != scenario_key(b, "cfp", "gfp")
        assert a.seed != b.seed

    def test_keys_separate_even_when_config_type_ignores_knob(self):
        # ELDI's config type has no placement fields: make_config drops
        # them, so the config *fingerprint* cannot tell the scenarios
        # apart.  The store key still must -- identical fingerprints in,
        # distinct keys out.
        a, b = config_grid(techniques=("eldi",)).scenarios()
        assert scenario_key(a, "cfp", "gfp") != scenario_key(b, "cfp", "gfp")

    def test_configless_scenarios_unchanged(self):
        # The config_overrides field must not leak into seeds or keys of
        # grids that do not use it; a change here breaks resume of old
        # stores.  A scenario stripped back to a configless clone must
        # key identically.
        grid = SweepGrid(
            benchmarks=("ADD",),
            techniques=("parallax",),
            shots=200,
            base_seed=7,
        )
        (scenario,) = grid.scenarios()
        assert scenario.config_overrides == ()
        clone = dataclasses.replace(scenario, config_overrides=())
        assert scenario_key(clone, "cfp", "gfp") == scenario_key(
            scenario, "cfp", "gfp"
        )

    def test_configless_seed_matches_pre_config_derivation(self):
        # Seeds of configless grids are derived from exactly the same
        # payload as before the config axis existed: an empty-config
        # scenario and the same grid re-expanded agree bit for bit.
        a = SweepGrid(
            benchmarks=("ADD",), techniques=("parallax",), shots=200,
            base_seed=7,
        ).scenarios()[0]
        b = config_grid(config_axes={}).scenarios()[0]
        assert a.seed == b.seed


class TestRecords:
    def test_config_overrides_in_record_and_analysis(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        run_sweep(config_grid(), store=store)
        records = list(store.records())
        assert len(records) == 2
        for record in records:
            assert "config_overrides" in record["scenario"]
        table = ResultTable.from_store(store)
        assert "placement_seed" in table.names
        assert sorted(table.column("placement_seed")) == [0, 1]

    def test_configless_record_has_no_config_field(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        run_sweep(
            SweepGrid(
                benchmarks=("ADD",),
                techniques=("parallax",),
                shots=200,
                base_seed=7,
            ),
            store=store,
        )
        (record,) = list(store.records())
        assert "config_overrides" not in record["scenario"]

    def test_legacy_record_without_config_field_loads(self, tmp_path):
        # Simulate an old store: write a record, strip the field, reload.
        store = SweepStore(tmp_path / "store")
        run_sweep(config_grid(), store=store)
        table = ResultTable.from_store(store)
        stripped = []
        for record in store.records():
            record = json.loads(json.dumps(record))
            record["scenario"].pop("config_overrides", None)
            stripped.append(record)
        legacy = SweepStore(tmp_path / "legacy")
        for record in stripped:
            legacy.put(record["key"], record)
        legacy_table = ResultTable.from_store(legacy)
        assert len(legacy_table) == len(table)
        assert "placement_seed" not in legacy_table.names

    def test_distinct_compilations_per_config_point(self, tmp_path):
        report = run_sweep(config_grid())
        assert report.compilations == 2

    def test_config_point_changes_compile_output(self):
        # Different placement seeds genuinely reach the compiler: the
        # records differ in result content, not only in key.
        records = run_sweep(
            config_grid(config_axes={"placement_seed": (0, 3)})
        ).records
        results = [json.dumps(r["result"], sort_keys=True) for r in records]
        assert len(set(results)) >= 1  # may coincide on tiny circuits...
        seeds = [r["scenario"]["config_overrides"] for r in records]
        assert seeds == [
            {"placement_seed": 0},
            {"placement_seed": 3},
        ]


def store_bytes(store: SweepStore) -> dict:
    """Canonical byte map of a store: key -> serialized record."""
    return {
        record["key"]: json.dumps(record, sort_keys=True)
        for record in store.records()
    }


def analyze_csv(store: SweepStore) -> str:
    table = ResultTable.from_store(store)
    return table.to_csv()


class TestByteIdentity:
    def test_resume_is_a_noop(self, tmp_path):
        grid = config_grid(
            config_axes={"placement_seed": (0, 1), "return_home": (True, False)}
        )
        store = SweepStore(tmp_path / "store")
        run_sweep(grid, store=store)
        before = store_bytes(store)
        clear_caches()
        report = run_sweep(grid, store=store, resume=True)
        assert report.resumed == 4 and report.computed == 0
        assert store_bytes(store) == before

    def test_two_workers_byte_identical_to_single(self, tmp_path):
        grid = config_grid(
            config_axes={"placement_seed": (0, 1), "return_home": (True, False)}
        )
        solo = SweepStore(tmp_path / "solo")
        run_sweep(grid, store=solo)
        clear_caches()
        fleet = SweepStore(tmp_path / "fleet")
        run_sweep(grid, store=fleet, distributed=True, workers=2)
        assert store_bytes(fleet) == store_bytes(solo)
        assert analyze_csv(fleet) == analyze_csv(solo)

    def test_eval_pool_byte_identical(self, tmp_path):
        grid = config_grid()
        solo = SweepStore(tmp_path / "solo")
        run_sweep(grid, store=solo)
        clear_caches()
        pooled = SweepStore(tmp_path / "pooled")
        run_sweep(grid, store=pooled, eval_workers=2)
        assert store_bytes(pooled) == store_bytes(solo)
