"""Tests for repro.noise.fidelity: the success-probability model."""

import math

import pytest

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.noise.fidelity import (
    NoiseModelConfig,
    decoherence_factor,
    success_probability,
)


def make_result(num_cz=0, num_u3=0, num_qubits=2, runtime_us=0.0,
                num_moves=0, trap_changes=0, spec=None):
    return CompilationResult(
        technique="parallax",
        circuit_name="t",
        num_qubits=num_qubits,
        spec=spec or HardwareSpec.quera_aquila(),
        num_cz=num_cz,
        num_u3=num_u3,
        num_moves=num_moves,
        trap_change_events=trap_changes,
        runtime_us=runtime_us,
    )


class TestDecoherenceFactor:
    def test_zero_time_no_decay(self):
        assert decoherence_factor(0.0, 5, HardwareSpec()) == 1.0

    def test_decay_formula(self):
        spec = HardwareSpec()
        t, q = 1000.0, 3
        expected = math.exp(-q * t * (1 / spec.t1_us + 1 / spec.t2_us))
        assert decoherence_factor(t, q, spec) == pytest.approx(expected)

    def test_more_qubits_decay_faster(self):
        spec = HardwareSpec()
        assert decoherence_factor(1e4, 10, spec) < decoherence_factor(1e4, 2, spec)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            decoherence_factor(-1.0, 2, HardwareSpec())

    def test_short_circuits_negligible_decay(self):
        # Hyperfine coherence of seconds vs microsecond circuits.
        assert decoherence_factor(100.0, 10, HardwareSpec()) > 0.999


class TestSuccessProbability:
    def test_empty_circuit_is_certain(self):
        result = make_result()
        assert success_probability(result) == pytest.approx(1.0)

    def test_cz_product(self):
        spec = HardwareSpec()
        result = make_result(num_cz=100)
        assert success_probability(result) == pytest.approx(
            (1 - spec.cz_error) ** 100
        )

    def test_paper_wst_calibration(self):
        # DESIGN.md Section 5: WST with 52 CZ gives ~0.77-0.78 in Fig. 10.
        result = make_result(num_cz=52, num_u3=100, num_qubits=27, runtime_us=108.0)
        assert success_probability(result) == pytest.approx(0.775, abs=0.01)

    def test_u3_much_cheaper_than_cz(self):
        p_u3 = success_probability(make_result(num_u3=100))
        p_cz = success_probability(make_result(num_cz=100))
        assert p_u3 > p_cz

    def test_movement_losses_counted(self):
        spec = HardwareSpec()
        with_moves = success_probability(make_result(num_moves=50))
        assert with_moves == pytest.approx((1 - spec.move_error) ** 50)

    def test_trap_changes_cost_two_switches(self):
        spec = HardwareSpec()
        result = make_result(trap_changes=10)
        expected = (1 - spec.trap_switch_error) ** 20
        assert success_probability(result) == pytest.approx(expected)

    def test_movement_excluded_when_configured(self):
        config = NoiseModelConfig(include_movement=False)
        result = make_result(num_moves=50, trap_changes=10)
        assert success_probability(result, config) == pytest.approx(1.0)

    def test_readout_off_by_default(self):
        result = make_result(num_qubits=20)
        assert success_probability(result) == pytest.approx(1.0)

    def test_readout_when_enabled(self):
        spec = HardwareSpec()
        config = NoiseModelConfig(include_readout=True)
        result = make_result(num_qubits=20)
        assert success_probability(result, config) == pytest.approx(
            (1 - spec.readout_error) ** 20
        )

    def test_decoherence_excluded_when_configured(self):
        config = NoiseModelConfig(include_decoherence=False)
        result = make_result(runtime_us=1e6, num_qubits=10)
        assert success_probability(result, config) == pytest.approx(1.0)

    def test_probability_in_unit_interval(self):
        result = make_result(num_cz=5000, num_u3=9000, num_qubits=30,
                             runtime_us=1e5, num_moves=100, trap_changes=50)
        p = success_probability(result)
        assert 0.0 <= p <= 1.0

    def test_fewer_cz_means_higher_success(self):
        # The mechanism behind Fig. 10: Parallax wins because it runs fewer
        # CZ gates.
        few = success_probability(make_result(num_cz=100))
        many = success_probability(make_result(num_cz=400))
        assert few > many
