"""Tests for repro.noise.fidelity: the success-probability model."""

import math

import pytest

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.hardware.spec import TRAP_SWITCHES_PER_RESOLUTION
from repro.noise.fidelity import (
    ChannelProbabilities,
    NoiseModelConfig,
    channel_probabilities,
    decoherence_factor,
    success_probability,
)


def make_result(num_cz=0, num_u3=0, num_qubits=2, runtime_us=0.0,
                num_moves=0, trap_changes=0, spec=None):
    return CompilationResult(
        technique="parallax",
        circuit_name="t",
        num_qubits=num_qubits,
        spec=spec or HardwareSpec.quera_aquila(),
        num_cz=num_cz,
        num_u3=num_u3,
        num_moves=num_moves,
        trap_change_events=trap_changes,
        runtime_us=runtime_us,
    )


class TestDecoherenceFactor:
    def test_zero_time_no_decay(self):
        assert decoherence_factor(0.0, 5, HardwareSpec()) == 1.0

    def test_decay_formula(self):
        spec = HardwareSpec()
        t, q = 1000.0, 3
        expected = math.exp(-q * t * (1 / spec.t1_us + 1 / spec.t2_us))
        assert decoherence_factor(t, q, spec) == pytest.approx(expected)

    def test_more_qubits_decay_faster(self):
        spec = HardwareSpec()
        assert decoherence_factor(1e4, 10, spec) < decoherence_factor(1e4, 2, spec)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            decoherence_factor(-1.0, 2, HardwareSpec())

    def test_short_circuits_negligible_decay(self):
        # Hyperfine coherence of seconds vs microsecond circuits.
        assert decoherence_factor(100.0, 10, HardwareSpec()) > 0.999


class TestSuccessProbability:
    def test_empty_circuit_is_certain(self):
        result = make_result()
        assert success_probability(result) == pytest.approx(1.0)

    def test_cz_product(self):
        spec = HardwareSpec()
        result = make_result(num_cz=100)
        assert success_probability(result) == pytest.approx(
            (1 - spec.cz_error) ** 100
        )

    def test_paper_wst_calibration(self):
        # DESIGN.md Section 5: WST with 52 CZ gives ~0.77-0.78 in Fig. 10.
        result = make_result(num_cz=52, num_u3=100, num_qubits=27, runtime_us=108.0)
        assert success_probability(result) == pytest.approx(0.775, abs=0.01)

    def test_u3_much_cheaper_than_cz(self):
        p_u3 = success_probability(make_result(num_u3=100))
        p_cz = success_probability(make_result(num_cz=100))
        assert p_u3 > p_cz

    def test_movement_losses_counted(self):
        spec = HardwareSpec()
        with_moves = success_probability(make_result(num_moves=50))
        assert with_moves == pytest.approx((1 - spec.move_error) ** 50)

    def test_trap_changes_cost_two_switches(self):
        spec = HardwareSpec()
        result = make_result(trap_changes=10)
        expected = (1 - spec.trap_switch_error) ** 20
        assert success_probability(result) == pytest.approx(expected)

    def test_movement_excluded_when_configured(self):
        config = NoiseModelConfig(include_movement=False)
        result = make_result(num_moves=50, trap_changes=10)
        assert success_probability(result, config) == pytest.approx(1.0)

    def test_readout_off_by_default(self):
        result = make_result(num_qubits=20)
        assert success_probability(result) == pytest.approx(1.0)

    def test_readout_when_enabled(self):
        spec = HardwareSpec()
        config = NoiseModelConfig(include_readout=True)
        result = make_result(num_qubits=20)
        assert success_probability(result, config) == pytest.approx(
            (1 - spec.readout_error) ** 20
        )

    def test_decoherence_excluded_when_configured(self):
        config = NoiseModelConfig(include_decoherence=False)
        result = make_result(runtime_us=1e6, num_qubits=10)
        assert success_probability(result, config) == pytest.approx(1.0)

    def test_probability_in_unit_interval(self):
        result = make_result(num_cz=5000, num_u3=9000, num_qubits=30,
                             runtime_us=1e5, num_moves=100, trap_changes=50)
        p = success_probability(result)
        assert 0.0 <= p <= 1.0

    def test_fewer_cz_means_higher_success(self):
        # The mechanism behind Fig. 10: Parallax wins because it runs fewer
        # CZ gates.
        few = success_probability(make_result(num_cz=100))
        many = success_probability(make_result(num_cz=400))
        assert few > many


class TestChannelProbabilities:
    def test_product_equals_success_probability(self):
        result = make_result(num_cz=120, num_u3=300, num_qubits=12,
                             runtime_us=800.0, num_moves=40, trap_changes=6)
        for config in (None, NoiseModelConfig(include_readout=True),
                       NoiseModelConfig(include_movement=False)):
            channels = channel_probabilities(result, config)
            assert channels.product == pytest.approx(
                success_probability(result, config)
            )

    def test_excluded_channels_never_fire(self):
        result = make_result(num_moves=50, trap_changes=5, num_qubits=10,
                             runtime_us=1e4)
        channels = channel_probabilities(
            result,
            NoiseModelConfig(include_movement=False,
                             include_decoherence=False),
        )
        assert channels.movement == 1.0
        assert channels.decoherence == 1.0
        assert channels.readout == 1.0

    def test_default_trap_switch_count_is_shared_constant(self):
        assert (
            NoiseModelConfig().trap_switches_per_resolution
            == TRAP_SWITCHES_PER_RESOLUTION
        )

    def test_channel_values_are_probabilities(self):
        result = make_result(num_cz=1000, num_u3=2000, num_qubits=25,
                             runtime_us=1e5, num_moves=300, trap_changes=40)
        channels = channel_probabilities(
            result, NoiseModelConfig(include_readout=True)
        )
        for value in (channels.gates, channels.movement,
                      channels.decoherence, channels.readout):
            assert 0.0 <= value <= 1.0

    def test_dataclass_defaults(self):
        channels = ChannelProbabilities(gates=0.5)
        assert channels.product == pytest.approx(0.5)
