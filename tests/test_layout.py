"""Tests for repro.layout: interaction graph, placement, radius, Graphine."""

import networkx as nx
import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.layout.graphine import generate_layout
from repro.layout.interaction_graph import build_interaction_graph
from repro.layout.placement import PlacementConfig, place_qubits, placement_cost
from repro.layout.radius import minimal_connected_radius


class TestInteractionGraph:
    def test_nodes_cover_all_qubits(self):
        c = QuantumCircuit(5).cz(0, 1)
        g = build_interaction_graph(c)
        assert set(g.nodes) == set(range(5))

    def test_edge_weights_count_gates(self):
        c = QuantumCircuit(3).cz(0, 1).cz(1, 0).cz(1, 2)
        g = build_interaction_graph(c)
        assert g[0][1]["weight"] == 2
        assert g[1][2]["weight"] == 1

    def test_isolated_qubits_have_no_edges(self):
        c = QuantumCircuit(4).cz(0, 1)
        g = build_interaction_graph(c)
        assert g.degree(3) == 0


class TestPlacementCost:
    def test_closer_interacting_pair_is_cheaper(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        g.add_edge(0, 1, weight=5)
        near = np.array([[0.4, 0.5], [0.6, 0.5]])
        far = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert placement_cost(near, g) < placement_cost(far, g)

    def test_repulsion_penalizes_collapse(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        stacked = np.array([[0.5, 0.5], [0.5, 0.5]])
        spread = np.array([[0.2, 0.5], [0.8, 0.5]])
        assert placement_cost(stacked, g) > placement_cost(spread, g)

    def test_weight_scales_attraction(self):
        light, heavy = nx.Graph(), nx.Graph()
        for g, w in ((light, 1), (heavy, 10)):
            g.add_nodes_from([0, 1])
            g.add_edge(0, 1, weight=w)
        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert placement_cost(pos, heavy) > placement_cost(pos, light)


class TestPlaceQubits:
    def test_output_in_unit_square(self):
        c = QuantumCircuit(8)
        for i in range(7):
            c.cz(i, i + 1)
        pos = place_qubits(build_interaction_graph(c))
        assert pos.shape == (8, 2)
        assert pos.min() >= 0.0 and pos.max() <= 1.0

    def test_deterministic_for_seed(self):
        c = QuantumCircuit(6).cz(0, 1).cz(2, 3).cz(4, 5)
        g = build_interaction_graph(c)
        a = place_qubits(g, PlacementConfig(seed=9))
        b = place_qubits(g, PlacementConfig(seed=9))
        np.testing.assert_allclose(a, b)

    def test_heavy_pairs_placed_closer(self):
        # Qubits 0-1 share many gates; 0-2 share one.
        c = QuantumCircuit(3)
        for _ in range(20):
            c.cz(0, 1)
        c.cz(0, 2)
        pos = place_qubits(build_interaction_graph(c))
        d01 = np.hypot(*(pos[0] - pos[1]))
        d02 = np.hypot(*(pos[0] - pos[2]))
        assert d01 < d02

    def test_dual_annealing_mode_runs(self):
        c = QuantumCircuit(4).cz(0, 1).cz(1, 2).cz(2, 3)
        config = PlacementConfig(method="dual_annealing", maxiter=5, seed=1)
        pos = place_qubits(build_interaction_graph(c), config)
        assert pos.shape == (4, 2)
        assert pos.min() >= 0.0 and pos.max() <= 1.0

    def test_dual_annealing_not_worse_than_start(self):
        c = QuantumCircuit(5)
        for i in range(4):
            for _ in range(3):
                c.cz(i, i + 1)
        g = build_interaction_graph(c)
        spring = place_qubits(g, PlacementConfig(method="spring", seed=2))
        annealed = place_qubits(
            g, PlacementConfig(method="dual_annealing", maxiter=20, seed=2)
        )
        assert placement_cost(annealed, g) <= placement_cost(spring, g) + 1e-6

    def test_single_qubit_centered(self):
        g = nx.Graph()
        g.add_node(0)
        np.testing.assert_allclose(place_qubits(g), [[0.5, 0.5]])

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            PlacementConfig(method="magic")

    def test_nonzero_based_nodes_rejected(self):
        g = nx.Graph()
        g.add_nodes_from([1, 2])
        with pytest.raises(ValueError, match="0..n-1"):
            place_qubits(g)


class TestMinimalConnectedRadius:
    def test_chain_bottleneck(self):
        pos = np.array([[0, 0], [1, 0], [3, 0]], dtype=float)
        # MST edges: 1 and 2 -> bottleneck 2.
        assert minimal_connected_radius(pos) == pytest.approx(2.0, rel=1e-6)

    def test_radius_connects_unit_disk_graph(self):
        rng = np.random.default_rng(3)
        pos = rng.random((15, 2))
        r = minimal_connected_radius(pos)
        g = nx.Graph()
        g.add_nodes_from(range(15))
        for i in range(15):
            for j in range(i + 1, 15):
                if np.hypot(*(pos[i] - pos[j])) <= r:
                    g.add_edge(i, j)
        assert nx.is_connected(g)

    def test_smaller_radius_disconnects(self):
        rng = np.random.default_rng(4)
        pos = rng.random((10, 2))
        r = minimal_connected_radius(pos, slack=1.0)
        g = nx.Graph()
        g.add_nodes_from(range(10))
        for i in range(10):
            for j in range(i + 1, 10):
                if np.hypot(*(pos[i] - pos[j])) < r * 0.999:
                    g.add_edge(i, j)
        assert not nx.is_connected(g)

    def test_fewer_than_two_points(self):
        assert minimal_connected_radius(np.zeros((1, 2))) == 0.0
        assert minimal_connected_radius(np.zeros((0, 2))) == 0.0


class TestGenerateLayout:
    def test_layout_fields(self):
        c = QuantumCircuit(5).cz(0, 1).cz(1, 2).cz(2, 3).cz(3, 4)
        layout = generate_layout(c)
        assert layout.num_qubits == 5
        assert layout.interaction_radius_unit > 0

    def test_idle_qubits_do_not_inflate_radius(self):
        # Two interacting qubits plus many idle ones: the radius should be
        # set by the interacting pair, not by far-flung idle atoms.
        c = QuantumCircuit(10).cz(0, 1)
        layout = generate_layout(c)
        d01 = np.hypot(*(layout.unit_positions[0] - layout.unit_positions[1]))
        assert layout.interaction_radius_unit <= d01 * 1.5 + 1e-6

    def test_single_qubit_circuit(self):
        c = QuantumCircuit(1).h(0)
        layout = generate_layout(c)
        assert layout.interaction_radius_unit > 0
