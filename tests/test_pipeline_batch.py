"""Tests for repro.pipeline.batch: the parallel batch-compilation engine."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.spec import HardwareSpec
from repro.pipeline.batch import (
    CompileTask,
    compile_many,
    compile_tasks,
    derive_task_seed,
)
from repro.pipeline.cache import CompilationCache


def ghz(n, name=None):
    c = QuantumCircuit(n, name or f"ghz{n}")
    c.h(0)
    for i in range(n - 1):
        c.cx(i, i + 1)
    return c


@pytest.fixture(scope="module")
def spec():
    return HardwareSpec.quera_aquila()


class TestDeriveTaskSeed:
    def test_deterministic(self):
        assert derive_task_seed(0, "a", "b") == derive_task_seed(0, "a", "b")

    def test_sensitive_to_every_part(self):
        seeds = {
            derive_task_seed(0, "a", "b"),
            derive_task_seed(1, "a", "b"),
            derive_task_seed(0, "a", "c"),
            derive_task_seed(0, "x", "b"),
        }
        assert len(seeds) == 4

    def test_fits_numpy_seed_range(self):
        for i in range(32):
            assert 0 <= derive_task_seed(i, "part") < 2**31


class TestCompileMany:
    def test_product_order_and_shape(self, spec):
        circuits = [ghz(3), ghz(4)]
        results = compile_many(circuits, ["parallax", "eldi"], [spec])
        assert len(results) == 4
        assert [r.technique for r in results] == ["parallax", "eldi", "parallax", "eldi"]
        assert [r.num_qubits for r in results] == [3, 3, 4, 4]

    def test_scalar_arguments_accepted(self, spec):
        results = compile_many(ghz(3), "parallax", spec)
        assert len(results) == 1
        assert results[0].technique == "parallax"

    def test_unknown_technique_fails_fast(self, spec):
        with pytest.raises(ValueError, match="unknown technique"):
            compile_many([ghz(3)], ["warpdrive"], [spec])

    def test_workers_do_not_change_results(self, spec):
        circuits = [ghz(3), ghz(5)]
        sequential = compile_many(circuits, None, [spec], workers=1)
        parallel = compile_many(circuits, None, [spec], workers=4)
        assert len(sequential) == len(parallel) == 6
        for a, b in zip(sequential, parallel):
            assert a.technique == b.technique
            assert a.num_cz == b.num_cz
            assert a.num_swaps == b.num_swaps
            assert a.num_layers == b.num_layers
            assert a.runtime_us == b.runtime_us  # bit-identical

    def test_cache_write_back_and_second_run_hits(self, spec):
        cache = CompilationCache()
        circuits = [ghz(3), ghz(4)]
        first = compile_many(circuits, ["parallax", "graphine"], [spec], cache=cache)
        assert cache.stats.stores == 4
        cache.stats.reset()
        second = compile_many(circuits, ["parallax", "graphine"], [spec], cache=cache)
        assert cache.stats.misses == 0
        assert cache.stats.hit_rate == 1.0  # >= 90% required; all hits here
        for a, b in zip(first, second):
            assert a is b  # memory cache returns the stored object

    def test_partial_cache_only_compiles_misses(self, spec):
        cache = CompilationCache()
        compile_many([ghz(3)], ["parallax"], [spec], cache=cache)
        cache.stats.reset()
        compile_many([ghz(3), ghz(4)], ["parallax"], [spec], cache=cache)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_return_timings_reports_stages(self, spec):
        pairs = compile_many([ghz(3)], ["parallax"], [spec], return_timings=True)
        result, timings = pairs[0]
        assert result.technique == "parallax"
        assert set(timings) == {
            f"parallax.{stage}"
            for stage in ("transpile", "layout", "placement", "schedule", "finalize")
        }

    def test_cached_results_report_empty_timings(self, spec):
        cache = CompilationCache()
        compile_many([ghz(3)], ["parallax"], [spec], cache=cache)
        pairs = compile_many(
            [ghz(3)], ["parallax"], [spec], cache=cache, return_timings=True
        )
        assert pairs[0][1] == {}

    def test_base_seed_changes_stochastic_configs(self, spec):
        a = compile_many([ghz(4)], ["parallax"], [spec], base_seed=1)
        b = compile_many([ghz(4)], ["parallax"], [spec], base_seed=2)
        c = compile_many([ghz(4)], ["parallax"], [spec], base_seed=1)
        # Same base seed reproduces bit-identically; the count invariants
        # hold regardless of seed.
        assert a[0].runtime_us == c[0].runtime_us
        assert a[0].num_cz == b[0].num_cz

    def test_config_factory_receives_task_identity(self, spec):
        seen = []

        def factory(technique, circuit, task_spec):
            seen.append((technique, circuit.name, task_spec.name))
            from repro.pipeline.registry import get_compiler

            return get_compiler(technique).make_config()

        compile_many([ghz(3, name="gg")], ["eldi"], [spec], config_factory=factory)
        assert seen == [("eldi", "gg", spec.name)]

    def test_compile_task_is_picklable(self, spec):
        import pickle

        task = CompileTask("parallax", ghz(3), spec, None)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.technique == "parallax"
        assert clone.circuit.num_qubits == 3


class TestCompileTasks:
    def test_non_product_task_list(self, spec):
        # An explicit list that is NOT a cartesian product: the sweep
        # runner's dedup shape.
        from repro.pipeline.registry import get_compiler

        tasks = [
            CompileTask("parallax", ghz(3), spec,
                        get_compiler("parallax").make_config()),
            CompileTask("eldi", ghz(4), spec,
                        get_compiler("eldi").make_config()),
        ]
        results = compile_tasks(tasks)
        assert [r.technique for r in results] == ["parallax", "eldi"]
        assert [r.num_qubits for r in results] == [3, 4]

    def test_matches_compile_many(self, spec):
        from repro.pipeline.registry import get_compiler

        config = get_compiler("parallax").make_config()
        via_tasks = compile_tasks([CompileTask("parallax", ghz(3), spec, config)])
        via_many = compile_many([ghz(3)], ["parallax"], [spec])
        assert via_tasks[0].num_cz == via_many[0].num_cz
        assert via_tasks[0].runtime_us == via_many[0].runtime_us

    def test_cache_hits_and_write_back(self, spec):
        from repro.pipeline.registry import get_compiler

        cache = CompilationCache()
        config = get_compiler("eldi").make_config()
        tasks = [CompileTask("eldi", ghz(3), spec, config)]
        first = compile_tasks(tasks, cache=cache)
        assert cache.stats.stores == 1
        second = compile_tasks(tasks, cache=cache)
        assert cache.stats.hits == 1
        assert second[0] is first[0]
