"""Tests for the community-based placement method."""

import networkx as nx
import numpy as np
import pytest

from repro.layout.interaction_graph import build_interaction_graph
from repro.layout.placement import PlacementConfig, place_qubits, placement_cost
from repro.circuit.circuit import QuantumCircuit


def modular_circuit(num_clusters=3, cluster_size=4, bridges=1):
    """Circuit with dense intra-cluster and sparse inter-cluster CZs."""
    n = num_clusters * cluster_size
    c = QuantumCircuit(n, "modular")
    for k in range(num_clusters):
        base = k * cluster_size
        for a in range(cluster_size):
            for b in range(a + 1, cluster_size):
                for _ in range(3):
                    c.cz(base + a, base + b)
    for k in range(num_clusters - 1):
        for _ in range(bridges):
            c.cz(k * cluster_size, (k + 1) * cluster_size)
    return c


class TestCommunityPlacement:
    def test_output_in_unit_square(self):
        g = build_interaction_graph(modular_circuit())
        pos = place_qubits(g, PlacementConfig(method="community"))
        assert pos.shape == (12, 2)
        assert pos.min() >= 0.0 and pos.max() <= 1.0

    def test_deterministic(self):
        g = build_interaction_graph(modular_circuit())
        a = place_qubits(g, PlacementConfig(method="community", seed=4))
        b = place_qubits(g, PlacementConfig(method="community", seed=4))
        np.testing.assert_allclose(a, b)

    def test_cluster_members_closer_than_strangers(self):
        g = build_interaction_graph(modular_circuit())
        pos = place_qubits(g, PlacementConfig(method="community"))
        # Mean intra-cluster distance < mean inter-cluster distance.
        intra, inter = [], []
        for a in range(12):
            for b in range(a + 1, 12):
                d = float(np.hypot(*(pos[a] - pos[b])))
                (intra if a // 4 == b // 4 else inter).append(d)
        assert np.mean(intra) < np.mean(inter)

    def test_competitive_cost_on_modular_graph(self):
        # Community placement trades some attraction cost for scalability;
        # it must stay within a small constant factor of the global spring.
        g = build_interaction_graph(modular_circuit(num_clusters=4, cluster_size=5))
        spring = placement_cost(
            place_qubits(g, PlacementConfig(method="spring")), g
        )
        community = placement_cost(
            place_qubits(g, PlacementConfig(method="community")), g
        )
        assert community <= spring * 2.5

    def test_tiny_graph_falls_back(self):
        g = nx.Graph()
        g.add_nodes_from(range(2))
        g.add_edge(0, 1, weight=1)
        pos = place_qubits(g, PlacementConfig(method="community"))
        assert pos.shape == (2, 2)

    def test_single_community_falls_back(self):
        # A clique has one community; must not crash.
        c = QuantumCircuit(5)
        for a in range(5):
            for b in range(a + 1, 5):
                c.cz(a, b)
        g = build_interaction_graph(c)
        pos = place_qubits(g, PlacementConfig(method="community"))
        assert pos.shape == (5, 2)

    def test_isolated_qubits_placed(self):
        c = QuantumCircuit(6).cz(0, 1).cz(2, 3)
        g = build_interaction_graph(c)
        pos = place_qubits(g, PlacementConfig(method="community"))
        assert not np.any(np.isnan(pos))

    def test_usable_by_parallax_end_to_end(self):
        from repro.core.compiler import ParallaxCompiler, ParallaxConfig
        from repro.hardware.spec import HardwareSpec

        config = ParallaxConfig(placement=PlacementConfig(method="community"))
        result = ParallaxCompiler(HardwareSpec.quera_aquila(), config).compile(
            modular_circuit()
        )
        assert result.num_swaps == 0
        assert result.num_cz > 0
