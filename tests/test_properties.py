"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG, circuit_layers
from repro.circuit.gate import Gate
from repro.circuit.matrices import circuit_unitary, u3_matrix
from repro.core.aod_selection import resolve_shared_coords
from repro.hardware.grid import discretize_positions
from repro.hardware.geometry import min_pairwise_separation, pairwise_distances
from repro.hardware.spec import HardwareSpec
from repro.layout.radius import minimal_connected_radius
from repro.transpile.euler import zyz_angles
from repro.transpile.passes import cancel_cz_pairs, merge_one_qubit_runs, optimize_circuit

angles = st.floats(
    min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False, allow_infinity=False
)


def random_basis_circuit(draw, num_qubits, max_gates=12):
    """Strategy helper: a random {u3, cz} circuit."""
    circuit = QuantumCircuit(num_qubits)
    n_gates = draw(st.integers(0, max_gates))
    for _ in range(n_gates):
        if num_qubits >= 2 and draw(st.booleans()):
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            circuit.cz(a, b)
        else:
            q = draw(st.integers(0, num_qubits - 1))
            circuit.u3(q, draw(angles), draw(angles), draw(angles))
    return circuit


basis_circuits = st.composite(
    lambda draw: random_basis_circuit(draw, draw(st.integers(1, 4)))
)()


class TestEulerProperties:
    @given(theta=angles, phi=angles, lam=angles)
    @settings(max_examples=150, deadline=None)
    def test_zyz_round_trip_up_to_phase(self, theta, phi, lam):
        u = u3_matrix(theta, phi, lam)
        resyn = u3_matrix(*zyz_angles(u))
        # Compare after phase alignment on the largest entry.
        idx = np.unravel_index(np.abs(u).argmax(), (2, 2))
        phase = resyn[idx] / u[idx]
        assert abs(abs(phase) - 1.0) < 1e-7
        assert np.allclose(resyn, phase * u, atol=1e-7)

    @given(theta=angles, phi=angles, lam=angles)
    @settings(max_examples=100, deadline=None)
    def test_angles_always_wrapped(self, theta, phi, lam):
        out = zyz_angles(u3_matrix(theta, phi, lam))
        for angle in out:
            assert -math.pi - 1e-9 <= angle <= math.pi + 1e-9


class TestPassProperties:
    @given(basis_circuits)
    @settings(max_examples=60, deadline=None)
    def test_optimize_preserves_unitary(self, circuit):
        out = optimize_circuit(circuit)
        before = circuit_unitary(circuit.gates, circuit.num_qubits)
        after = circuit_unitary(out.gates, circuit.num_qubits)
        idx = np.unravel_index(np.abs(before).argmax(), before.shape)
        phase = after[idx] / before[idx]
        assert np.allclose(after, phase * before, atol=1e-6)

    @given(basis_circuits)
    @settings(max_examples=60, deadline=None)
    def test_optimize_never_grows(self, circuit):
        assert len(optimize_circuit(circuit)) <= len(circuit)

    @given(basis_circuits)
    @settings(max_examples=60, deadline=None)
    def test_cancel_cz_preserves_cz_parity_per_pair(self, circuit):
        def pair_counts(c):
            counts = {}
            for g in c:
                if g.name == "cz":
                    key = (min(g.qubits), max(g.qubits))
                    counts[key] = counts.get(key, 0) + 1
            return counts

        before = pair_counts(circuit)
        after = pair_counts(cancel_cz_pairs(circuit))
        for key in set(before) | set(after):
            assert before.get(key, 0) % 2 == after.get(key, 0) % 2

    @given(basis_circuits)
    @settings(max_examples=60, deadline=None)
    def test_merge_leaves_at_most_one_u3_between_czs(self, circuit):
        out = merge_one_qubit_runs(circuit)
        # No two consecutive u3 gates on the same qubit without a cz between.
        last_was_u3_on = set()
        for gate in out:
            if gate.name == "u3":
                assert gate.qubits[0] not in last_was_u3_on
                last_was_u3_on.add(gate.qubits[0])
            else:
                last_was_u3_on -= set(gate.qubits)


class TestDagProperties:
    @given(basis_circuits)
    @settings(max_examples=60, deadline=None)
    def test_greedy_drain_executes_every_gate_once(self, circuit):
        dag = DependencyDAG(circuit)
        executed = 0
        while not dag.done():
            ready = dag.ready_front_gates()
            assert ready
            dag.pop(ready[0])
            executed += 1
        assert executed == len(
            [g for g in circuit if g.name not in ("barrier", "measure")]
        )

    @given(basis_circuits)
    @settings(max_examples=60, deadline=None)
    def test_layering_respects_per_qubit_order(self, circuit):
        layers = circuit_layers(circuit)
        flat = [g for layer in layers for g in layer]
        per_qubit_flat = {}
        for g in flat:
            for q in g.qubits:
                per_qubit_flat.setdefault(q, []).append(g)
        per_qubit_orig = {}
        for g in circuit:
            for q in g.qubits:
                per_qubit_orig.setdefault(q, []).append(g)
        # Within each layer order is free, but ASAP layering preserves the
        # per-qubit sequence because each gate lands after its predecessor.
        for q in per_qubit_orig:
            assert per_qubit_flat[q] == per_qubit_orig[q]


coords = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=0, max_size=20
)


class TestResolveSharedCoordsProperties:
    @given(coords, st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=100, deadline=None)
    def test_output_respects_gap(self, values, gap):
        out = resolve_shared_coords(np.array(values), gap)
        out_sorted = np.sort(out)
        assert np.all(np.diff(out_sorted) >= gap - 1e-9)

    @given(coords, st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=100, deadline=None)
    def test_values_never_decrease(self, values, gap):
        arr = np.array(values)
        out = resolve_shared_coords(arr, gap)
        assert np.all(out >= arr - 1e-12)

    @given(coords, st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=100, deadline=None)
    def test_rank_order_preserved(self, values, gap):
        arr = np.array(values)
        out = resolve_shared_coords(arr, gap)
        # Strict original orderings must be preserved.
        for i in range(len(arr)):
            for j in range(len(arr)):
                if arr[i] < arr[j]:
                    assert out[i] < out[j] + 1e-12


unit_points = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


class TestDiscretizationProperties:
    @given(unit_points)
    @settings(max_examples=50, deadline=None)
    def test_separation_always_satisfied(self, points):
        spec = HardwareSpec.quera_aquila()
        positions, sites = discretize_positions(np.array(points), spec)
        assert len(set(sites)) == len(sites)
        assert min_pairwise_separation(positions) >= spec.min_separation_um

    @given(unit_points)
    @settings(max_examples=50, deadline=None)
    def test_sites_in_grid(self, points):
        spec = HardwareSpec.quera_aquila()
        _, sites = discretize_positions(np.array(points), spec)
        for row, col in sites:
            assert 0 <= row < spec.grid_rows
            assert 0 <= col < spec.grid_cols


class TestRadiusProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            min_size=2,
            max_size=15,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_radius_bounded_by_max_pairwise_distance(self, points):
        pos = np.array(points)
        r = minimal_connected_radius(pos)
        assert r <= pairwise_distances(pos).max() * (1 + 1e-6) + 1e-12
