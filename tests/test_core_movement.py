"""Tests for repro.core.movement: the recursive movement engine."""

import numpy as np
import pytest

from repro.core.machine import MachineState
from repro.core.movement import MovementEngine, MoveFailure
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout


def build_state(unit_positions, aod_qubits, radius=0.15, spec=None):
    """MachineState with the given qubits transferred into the AOD."""
    spec = spec or HardwareSpec.quera_aquila()
    layout = GraphineLayout(
        unit_positions=np.asarray(unit_positions, dtype=float),
        interaction_radius_unit=radius,
    )
    state = MachineState(spec, layout)
    order_y = sorted(aod_qubits, key=lambda q: state.positions[q][1])
    order_x = sorted(aod_qubits, key=lambda q: state.positions[q][0])
    for q in aod_qubits:
        state.transfer_to_aod(q, order_y.index(q), order_x.index(q))
        state.atoms[q].home = state.positions[q].copy()
    return state


class TestMoveIntoRange:
    def test_basic_move_succeeds(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9]], aod_qubits=[0])
        engine = MovementEngine(state)
        engine.begin_layer()
        engine.move_into_range(0, 1)
        assert state.in_interaction_range(0, 1)

    def test_move_respects_separation(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9], [0.85, 0.85]], aod_qubits=[0])
        engine = MovementEngine(state)
        engine.begin_layer()
        engine.move_into_range(0, 1)
        assert state.separation_ok()

    def test_move_distance_recorded(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9]], aod_qubits=[0])
        engine = MovementEngine(state)
        engine.begin_layer()
        engine.move_into_range(0, 1)
        assert engine.max_object_distance() > 0

    def test_static_mover_rejected(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9]], aod_qubits=[])
        engine = MovementEngine(state)
        with pytest.raises(ValueError, match="not in the AOD"):
            engine.move_into_range(0, 1)

    def test_obstructing_aod_atom_pushed_away(self):
        # Qubit 2 (mobile) sits right where qubit 0 wants to go.
        spec = HardwareSpec.quera_aquila()
        state = build_state(
            [[0.1, 0.1], [0.9, 0.9], [0.82, 0.82]], aod_qubits=[0, 2]
        )
        engine = MovementEngine(state)
        engine.begin_layer()
        engine.move_into_range(0, 1)
        assert state.in_interaction_range(0, 1)
        assert state.separation_ok()

    def test_aod_order_preserved_after_moves(self):
        state = build_state(
            [[0.1, 0.1], [0.9, 0.9], [0.5, 0.5]], aod_qubits=[0, 2]
        )
        engine = MovementEngine(state)
        engine.begin_layer()
        engine.move_into_range(0, 1)
        row_y = state.aod.row_y[~np.isnan(state.aod.row_y)]
        col_x = state.aod.col_x[~np.isnan(state.aod.col_x)]
        assert np.all(np.diff(row_y) > 0)
        assert np.all(np.diff(col_x) > 0)

    def test_recursion_limit_raises_and_rolls_back(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9]], aod_qubits=[0])
        engine = MovementEngine(state, recursion_limit=0)
        engine.begin_layer()
        positions_before = state.positions.copy()
        with pytest.raises(MoveFailure):
            engine.move_into_range(0, 1)
        np.testing.assert_allclose(state.positions, positions_before)

    def test_failed_move_restores_aod_lines(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9]], aod_qubits=[0])
        engine = MovementEngine(state, recursion_limit=0)
        engine.begin_layer()
        row_before = state.aod.row_y.copy()
        with pytest.raises(MoveFailure):
            engine.move_into_range(0, 1)
        np.testing.assert_array_equal(
            np.nan_to_num(state.aod.row_y), np.nan_to_num(row_before)
        )

    def test_failed_move_leaves_distance_accounting(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9]], aod_qubits=[0])
        engine = MovementEngine(state, recursion_limit=0)
        engine.begin_layer()
        with pytest.raises(MoveFailure):
            engine.move_into_range(0, 1)
        assert engine.max_object_distance() == 0.0


class TestReturnHome:
    def test_return_home_restores_positions(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9]], aod_qubits=[0])
        engine = MovementEngine(state)
        engine.begin_layer()
        home = state.atoms[0].home.copy()
        engine.move_into_range(0, 1)
        distance = engine.return_home()
        assert distance > 0
        np.testing.assert_allclose(state.positions[0], home)

    def test_return_home_distance_zero_when_at_home(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9]], aod_qubits=[0])
        engine = MovementEngine(state)
        assert engine.return_home_distance() == 0.0

    def test_return_home_restores_all_pushed_atoms(self):
        state = build_state(
            [[0.1, 0.1], [0.9, 0.9], [0.82, 0.82]], aod_qubits=[0, 2]
        )
        engine = MovementEngine(state)
        engine.begin_layer()
        homes = {q: state.atoms[q].home.copy() for q in (0, 2)}
        engine.move_into_range(0, 1)
        engine.return_home()
        for q, home in homes.items():
            np.testing.assert_allclose(state.positions[q], home)

    def test_begin_layer_resets_accounting(self):
        state = build_state([[0.1, 0.1], [0.9, 0.9]], aod_qubits=[0])
        engine = MovementEngine(state)
        engine.begin_layer()
        engine.move_into_range(0, 1)
        engine.return_home()
        engine.begin_layer()
        assert engine.max_object_distance() == 0.0
