"""Tests for repro.qasm.exporter (including round-trips through the parser)."""

import math

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.qasm.exporter import to_qasm
from repro.qasm.parser import parse_qasm


class TestExport:
    def test_header_present(self):
        text = to_qasm(QuantumCircuit(2).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
        assert "qreg q[2];" in text

    def test_gate_lines(self):
        text = to_qasm(QuantumCircuit(2).cz(0, 1))
        assert "cz q[0], q[1];" in text

    def test_params_serialized_precisely(self):
        c = QuantumCircuit(1).rz(0, math.pi / 3)
        text = to_qasm(c)
        reparsed = parse_qasm(text)
        assert reparsed[0].params[0] == pytest.approx(math.pi / 3, abs=0)

    def test_measure_emitted_with_creg(self):
        c = QuantumCircuit(2)
        c.add("measure", (1,))
        text = to_qasm(c)
        assert "creg c[2];" in text
        assert "measure q[1] -> c[1];" in text

    def test_measure_suppressed(self):
        c = QuantumCircuit(1)
        c.add("measure", (0,))
        text = to_qasm(c, include_measure=False)
        assert "measure" not in text
        assert "creg" not in text

    def test_barrier_emitted(self):
        c = QuantumCircuit(2)
        c.add("barrier", (0,))
        assert "barrier q[0];" in to_qasm(c)


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [
        lambda c: c.h(0).cx(0, 1).cz(1, 2),
        lambda c: c.u3(0, 0.1, 0.2, 0.3).rz(1, -1.5),
        lambda c: c.ccx(0, 1, 2).swap(0, 2),
    ])
    def test_parse_export_parse_identity(self, builder):
        original = QuantumCircuit(3)
        builder(original)
        reparsed = parse_qasm(to_qasm(original))
        assert reparsed.num_qubits == original.num_qubits
        assert list(reparsed) == list(original)

    def test_transpiled_circuit_round_trips(self):
        from repro.transpile import transpile

        c = QuantumCircuit(3)
        c.cswap(0, 1, 2)
        basis = transpile(c)
        reparsed = parse_qasm(to_qasm(basis))
        assert list(reparsed) == list(basis)
