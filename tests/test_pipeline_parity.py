"""Parity: the pipeline-refactored compilers reproduce the seed's numbers.

The expected values below were captured from the pre-refactor (seed)
implementations of ParallaxCompiler / GraphineCompiler / EldiCompiler on
QUICK_BENCHMARKS with the default ExperimentSettings on the QuEra machine.
The staged PassPipeline must reproduce them bit-for-bit -- any drift means
the refactor changed compilation behavior, not just structure.
"""

import pytest

from repro.experiments.common import (
    QUICK_BENCHMARKS,
    ExperimentSettings,
    clear_caches,
    compile_one,
)
from repro.hardware.spec import HardwareSpec

#: (technique, benchmark) -> (num_cz, runtime_us) from the seed implementation.
SEED_EXPECTED = {
    ("graphine", "ADD"): (377, 423.6000000000001),
    ("eldi", "ADD"): (215, 347.20000000000044),
    ("parallax", "ADD"): (128, 325.96527763103035),
    ("graphine", "ADV"): (24, 50.8),
    ("eldi", "ADV"): (54, 73.6),
    ("parallax", "ADV"): (24, 56.78842735109821),
    ("graphine", "HLF"): (81, 75.99999999999997),
    ("eldi", "HLF"): (99, 91.59999999999998),
    ("parallax", "HLF"): (30, 51.08176906875217),
    ("graphine", "QAOA"): (258, 362.40000000000026),
    ("eldi", "QAOA"): (306, 393.2000000000003),
    ("parallax", "QAOA"): (162, 328.0251840723085),
    ("graphine", "QEC"): (73, 70.79999999999997),
    ("eldi", "QEC"): (91, 102.79999999999997),
    ("parallax", "QEC"): (40, 57.259539847409165),
    ("graphine", "WST"): (78, 200.40000000000015),
    ("eldi", "WST"): (81, 202.80000000000015),
    ("parallax", "WST"): (78, 1204.9567288134874),
}


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(benchmarks=QUICK_BENCHMARKS)


@pytest.fixture(scope="module")
def spec():
    return HardwareSpec.quera_aquila()


@pytest.mark.parametrize(
    "technique,bench", sorted(SEED_EXPECTED), ids=lambda v: str(v)
)
def test_seed_parity(technique, bench, spec, settings):
    expected_cz, expected_runtime = SEED_EXPECTED[(technique, bench)]
    result = compile_one(technique, bench, spec, settings)
    assert result.num_cz == expected_cz
    assert result.runtime_us == pytest.approx(expected_runtime, rel=1e-12, abs=0.0)
