"""Tests for repro.core.parallel_shots (Section II-E)."""

import math

import pytest

from repro.core.parallel_shots import (
    ShotPlan,
    parallelization_factor,
    plan_parallel_shots,
    total_execution_time_us,
)
from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec


def make_result(
    footprint=(3, 3),
    aod_qubits=(0, 1),
    num_qubits=9,
    runtime_us=100.0,
    spec=None,
):
    spec = spec or HardwareSpec.atom_computing()
    return CompilationResult(
        technique="parallax",
        circuit_name="t",
        num_qubits=num_qubits,
        spec=spec,
        num_cz=10,
        num_u3=10,
        runtime_us=runtime_us,
        footprint_sites=footprint,
        aod_qubits=aod_qubits,
    )


class TestReplicaSide:
    @pytest.mark.parametrize("qubits,side", [
        (1, 1), (4, 2), (9, 3), (10, 4), (11, 4), (18, 5), (25, 5),
        (27, 6), (32, 6), (128, 12),
    ])
    def test_dense_square_side(self, qubits, side):
        from repro.core.parallel_shots import replica_side_sites

        assert replica_side_sites(qubits) == side


class TestParallelizationFactor:
    def test_paper_fig11_maxima(self):
        # The paper's Fig. 11 x-axis maxima on the 1,225-qubit machine.
        expected = {9: 121, 25: 49, 32: 25, 11: 64, 18: 49, 27: 25}
        for qubits, factor in expected.items():
            result = make_result(num_qubits=qubits)
            assert parallelization_factor(result) == factor, qubits

    def test_adv_121_copies(self):
        # "As many as 121 copies of ADV" (9 qubits) on the Atom machine.
        result = make_result(num_qubits=9, aod_qubits=(0,))
        assert parallelization_factor(result) == 121

    def test_constrain_aod_binds_tiling(self):
        result = make_result(num_qubits=9, aod_qubits=tuple(range(9)))
        unconstrained = parallelization_factor(result)
        constrained = parallelization_factor(result, constrain_aod=True)
        assert constrained <= (20 // 9) ** 2
        assert constrained < unconstrained

    def test_machine_sized_circuit_gives_one(self):
        result = make_result(num_qubits=1225)
        assert parallelization_factor(result) == 1

    def test_atom_capacity_cap(self):
        result = make_result(num_qubits=400, aod_qubits=(0,))
        assert parallelization_factor(result) <= 1225 // 400

    def test_explicit_spec_overrides_result_spec(self):
        result = make_result(num_qubits=9, aod_qubits=(0,),
                             spec=HardwareSpec.quera_aquila())
        small = parallelization_factor(result)
        large = parallelization_factor(result, HardwareSpec.atom_computing())
        assert large > small


class TestTotalExecutionTime:
    def test_serial_baseline(self):
        result = make_result(runtime_us=100.0)
        total = total_execution_time_us(result, num_shots=10, factor=1,
                                        shot_overhead_us=0.0)
        assert total == pytest.approx(1000.0)

    def test_parallel_divides_shots(self):
        result = make_result(runtime_us=100.0)
        serial = total_execution_time_us(result, 100, factor=1, shot_overhead_us=0.0)
        parallel = total_execution_time_us(result, 100, factor=10, shot_overhead_us=0.0)
        assert parallel == pytest.approx(serial / 10)

    def test_ceil_physical_shots(self):
        result = make_result(runtime_us=1.0)
        total = total_execution_time_us(result, num_shots=7, factor=2,
                                        shot_overhead_us=0.0)
        assert total == pytest.approx(4.0)  # ceil(7/2) = 4

    def test_overhead_added_per_physical_shot(self):
        result = make_result(runtime_us=100.0)
        total = total_execution_time_us(result, 10, factor=1, shot_overhead_us=50.0)
        assert total == pytest.approx(10 * 150.0)

    def test_default_factor_computed(self):
        result = make_result(footprint=(3, 3), aod_qubits=(0,), runtime_us=100.0)
        total_auto = total_execution_time_us(result, 8000)
        total_manual = total_execution_time_us(result, 8000, factor=121)
        assert total_auto == pytest.approx(total_manual)

    def test_invalid_shots_rejected(self):
        with pytest.raises(ValueError):
            total_execution_time_us(make_result(), num_shots=0)


class TestPlanParallelShots:
    def test_factors_are_squares(self):
        plans = plan_parallel_shots(make_result(footprint=(3, 3), aod_qubits=(0,)))
        factors = [p.factor for p in plans]
        assert factors[0] == 1
        for f in factors:
            root = math.isqrt(f)
            assert root * root == f

    def test_time_monotonically_decreases(self):
        plans = plan_parallel_shots(make_result(footprint=(3, 3), aod_qubits=(0,)))
        times = [p.total_time_us for p in plans]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_infeasible_factors_skipped(self):
        plans = plan_parallel_shots(
            make_result(footprint=(3, 3), aod_qubits=(0,)), factors=[1, 121, 10_000]
        )
        assert [p.factor for p in plans] == [1, 121]

    def test_97_percent_reduction_shape(self):
        # The paper: parallelism reduces total execution time by ~97% on
        # average vs one-shot-at-a-time, i.e. the best factor is >= ~30x.
        result = make_result(footprint=(3, 3), aod_qubits=(0,), runtime_us=67.0)
        plans = plan_parallel_shots(result, num_shots=8000, shot_overhead_us=0.0)
        best = plans[-1]
        first = plans[0]
        assert best.total_time_us <= first.total_time_us * 0.05

    def test_total_time_s_property(self):
        plan = ShotPlan(factor=1, physical_shots=10, total_time_us=2e6)
        assert plan.total_time_s == pytest.approx(2.0)
