"""Tests for repro.viz.svg."""

import numpy as np
import pytest

from repro.core.machine import MachineState
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout
from repro.viz.svg import machine_to_svg


@pytest.fixture
def state():
    layout = GraphineLayout(
        unit_positions=np.array([[0.1, 0.1], [0.9, 0.9], [0.5, 0.5]]),
        interaction_radius_unit=0.2,
    )
    return MachineState(HardwareSpec.quera_aquila(), layout)


class TestMachineToSvg:
    def test_valid_svg_skeleton(self, state):
        svg = machine_to_svg(state)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_one_circle_per_atom_plus_sites(self, state):
        svg = machine_to_svg(state, show_labels=False)
        # 256 sites total: 3 occupied atoms + 253 free-site dots.
        assert svg.count("<circle") == 253 + 3

    def test_aod_atoms_styled_differently(self, state):
        state.transfer_to_aod(2, 0, 0)
        svg = machine_to_svg(state)
        assert "#d6336c" in svg  # AOD ring colour appears

    def test_labels_toggle(self, state):
        with_labels = machine_to_svg(state, show_labels=True)
        without = machine_to_svg(state, show_labels=False)
        assert "<text" in with_labels
        assert "<text" not in without

    def test_highlight_draws_radii(self, state):
        svg = machine_to_svg(state, highlight_qubit=0)
        assert "stroke-dasharray" in svg  # the blockade circle
        assert svg.count("stroke-width") >= 2

    def test_bad_highlight_rejected(self, state):
        with pytest.raises(ValueError, match="no qubit"):
            machine_to_svg(state, highlight_qubit=99)

    def test_machine_comment_present(self, state):
        assert "quera-aquila-256" in machine_to_svg(state)
