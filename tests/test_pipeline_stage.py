"""Tests for repro.pipeline.stage: PassPipeline mechanics and timing hooks."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import ParallaxCompiler
from repro.hardware.spec import HardwareSpec
from repro.pipeline.stage import (
    STAGE_NAMES,
    CompileContext,
    PassPipeline,
    PipelineStage,
    install_pipeline_timer,
    installed_pipeline_timer,
    profiled_pipeline,
)
from repro.utils.profiling import PhaseTimer


def small_circuit():
    return QuantumCircuit(2, "tiny").h(0).cx(0, 1)


@pytest.fixture
def ctx():
    return CompileContext(circuit=small_circuit(), spec=HardwareSpec.quera_aquila())


class TestPassPipeline:
    def test_runs_stages_in_order(self, ctx):
        order = []

        def make(name):
            def run(context):
                order.append(name)
                if name == "last":
                    context.result = "sentinel"
            return PipelineStage(name, run)

        pipeline = PassPipeline([make("first"), make("second"), make("last")])
        assert pipeline.run(ctx) == "sentinel"
        assert order == ["first", "second", "last"]

    def test_missing_result_raises(self, ctx):
        pipeline = PassPipeline([PipelineStage("noop", lambda c: None)])
        with pytest.raises(RuntimeError, match="without producing a result"):
            pipeline.run(ctx)

    def test_duplicate_stage_names_rejected(self):
        stages = [PipelineStage("a", lambda c: None), PipelineStage("a", lambda c: None)]
        with pytest.raises(ValueError, match="duplicate"):
            PassPipeline(stages)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            PassPipeline([])

    def test_canonical_stage_names(self):
        assert STAGE_NAMES == ("transpile", "layout", "placement", "schedule", "finalize")


class TestTimingHooks:
    def test_explicit_timer_records_every_stage(self, ctx):
        timer = PhaseTimer()

        def finish(context):
            context.result = "done"

        pipeline = PassPipeline(
            [PipelineStage("work", lambda c: None), PipelineStage("finish", finish)],
            technique="demo",
            timer=timer,
        )
        pipeline.run(ctx)
        assert set(timer.totals()) == {"demo.work", "demo.finish"}
        assert timer.counts()["demo.work"] == 1

    def test_installed_timer_used_when_no_override(self):
        timer = PhaseTimer()
        previous = install_pipeline_timer(timer)
        try:
            ParallaxCompiler(HardwareSpec.quera_aquila()).compile(small_circuit())
        finally:
            install_pipeline_timer(previous)
        phases = set(timer.totals())
        assert phases == {f"parallax.{name}" for name in STAGE_NAMES}

    def test_profiled_pipeline_scopes_installation(self):
        assert installed_pipeline_timer() is None
        with profiled_pipeline() as timer:
            assert installed_pipeline_timer() is timer
            ParallaxCompiler(HardwareSpec.quera_aquila()).compile(small_circuit())
        assert installed_pipeline_timer() is None
        assert timer.totals()  # phases were recorded inside the scope

    def test_untimed_by_default(self):
        # No timer installed: compile still works, nothing recorded anywhere.
        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(small_circuit())
        assert result.num_cz > 0


class TestCompileContext:
    def test_footprint_empty(self, ctx):
        assert ctx.footprint() == (0, 0)

    def test_footprint_bounding_box(self, ctx):
        ctx.sites = [(2, 3), (4, 3), (2, 7)]
        assert ctx.footprint() == (3, 5)
