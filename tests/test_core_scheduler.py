"""Tests for repro.core.scheduler: Algorithm 1."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.aod_selection import select_aod_qubits
from repro.core.machine import MachineState
from repro.core.scheduler import GateScheduler, SchedulerConfig
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import generate_layout
from repro.transpile import transpile


def schedule_circuit(circuit, spec=None, config=None, select_aod=True):
    spec = spec or HardwareSpec.quera_aquila()
    basis = transpile(circuit)
    layout = generate_layout(basis)
    state = MachineState(spec, layout)
    if select_aod:
        select_aod_qubits(basis, state)
    scheduler = GateScheduler(basis, state, config)
    return scheduler, scheduler.run()


def fredkin():
    c = QuantumCircuit(3, "fredkin")
    c.cswap(0, 1, 2)
    return c


class TestValidation:
    def test_requires_basis_circuit(self):
        spec = HardwareSpec.quera_aquila()
        c = QuantumCircuit(2).cx(0, 1)
        layout = generate_layout(c)
        state = MachineState(spec, layout)
        with pytest.raises(ValueError, match="transpiled"):
            GateScheduler(c, state)


class TestCompleteness:
    def test_all_gates_scheduled_exactly_once(self):
        scheduler, stats = schedule_circuit(fredkin())
        basis = scheduler.circuit
        scheduled = [g for layer in stats.layers for g in layer.gates]
        assert len(scheduled) == len(basis)
        assert sorted(map(str, scheduled)) == sorted(map(str, basis.gates))

    def test_dag_drained(self):
        scheduler, _ = schedule_circuit(fredkin())
        assert scheduler.dag.done()

    def test_dependency_order_preserved_per_qubit(self):
        scheduler, stats = schedule_circuit(fredkin())
        basis = scheduler.circuit
        # Per-qubit order of gates across layers must match circuit order.
        order_in_circuit = {q: [] for q in range(basis.num_qubits)}
        for i, gate in enumerate(basis.gates):
            for q in gate.qubits:
                order_in_circuit[q].append(str(gate) + f"#{i}")
        # Reconstruct per-qubit execution order; identical gates are
        # interchangeable so compare multiset prefix-wise via string forms
        # without indices.
        executed = {q: [] for q in range(basis.num_qubits)}
        for layer in stats.layers:
            for gate in layer.gates:
                for q in gate.qubits:
                    executed[q].append(str(gate))
        for q in range(basis.num_qubits):
            expected = [s.rsplit("#", 1)[0] for s in order_in_circuit[q]]
            assert executed[q] == expected

    def test_layers_have_disjoint_qubits(self):
        _, stats = schedule_circuit(fredkin())
        for layer in stats.layers:
            seen = set()
            for gate in layer.gates:
                assert not (seen & set(gate.qubits))
                seen.update(gate.qubits)


class TestZeroSwaps:
    def test_no_swap_gates_ever(self):
        _, stats = schedule_circuit(fredkin())
        for layer in stats.layers:
            for gate in layer.gates:
                assert gate.name in ("u3", "cz")

    def test_cz_count_unchanged(self):
        scheduler, stats = schedule_circuit(fredkin())
        basis_cz = sum(1 for g in scheduler.circuit if g.name == "cz")
        scheduled_cz = sum(layer.num_cz for layer in stats.layers)
        assert scheduled_cz == basis_cz


class TestBlockadeSerialization:
    def test_parallel_cz_gates_respect_blockade(self):
        # Grid-adjacent pairs executing CZs in the same layer must be
        # farther apart than the blockade radius.
        c = QuantumCircuit(8)
        for a in range(0, 8, 2):
            c.cz(a, a + 1)
        scheduler, stats = schedule_circuit(c)
        state = scheduler.state
        for layer in stats.layers:
            cz_gates = [g for g in layer.gates if g.name == "cz"]
            for i in range(len(cz_gates)):
                for j in range(i + 1, len(cz_gates)):
                    dist = min(
                        state.distance(qa, qb)
                        for qa in cz_gates[i].qubits
                        for qb in cz_gates[j].qubits
                    )
                    # Executed-together gates were validated against live
                    # positions at execution time; with home-return those
                    # positions equal the current ones for static atoms.
                    assert dist > 0


class TestTiming:
    def test_runtime_positive(self):
        _, stats = schedule_circuit(fredkin())
        assert stats.total_time_us > 0

    def test_layer_times_sum_to_total(self):
        _, stats = schedule_circuit(fredkin())
        assert sum(l.time_us for l in stats.layers) == pytest.approx(
            stats.total_time_us
        )

    def test_u3_only_layer_time(self):
        c = QuantumCircuit(2).h(0).h(1)
        _, stats = schedule_circuit(c)
        spec = HardwareSpec.quera_aquila()
        assert stats.layers[0].time_us == pytest.approx(spec.u3_time_us)

    def test_movement_adds_time(self):
        # Force one far CZ so a move (or trap change) must happen.
        c = QuantumCircuit(2)
        for _ in range(3):
            c.cz(0, 1)
            c.h(0)
            c.h(1)
        _, stats = schedule_circuit(c)
        assert stats.total_time_us >= 3 * 0.8


class TestHomeReturn:
    def test_home_return_restores_positions_every_layer(self):
        scheduler, stats = schedule_circuit(
            fredkin(), config=SchedulerConfig(return_home=True)
        )
        state = scheduler.state
        for q in state.mobile_qubits():
            np.testing.assert_allclose(state.positions[q], state.atoms[q].home)

    def test_no_home_return_leaves_drift(self):
        config = SchedulerConfig(return_home=False)
        scheduler, stats = schedule_circuit(fredkin(), config=config)
        assert all(l.return_distance_um == 0.0 for l in stats.layers)

    def test_home_return_records_return_distance(self):
        scheduler, stats = schedule_circuit(fredkin())
        if stats.num_moves:
            assert any(l.return_distance_um > 0 for l in stats.layers)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        _, stats_a = schedule_circuit(fredkin(), config=SchedulerConfig(seed=3))
        _, stats_b = schedule_circuit(fredkin(), config=SchedulerConfig(seed=3))
        assert len(stats_a.layers) == len(stats_b.layers)
        assert stats_a.total_time_us == pytest.approx(stats_b.total_time_us)

    def test_shuffle_off_is_deterministic(self):
        config = SchedulerConfig(shuffle=False)
        _, stats_a = schedule_circuit(fredkin(), config=config)
        _, stats_b = schedule_circuit(fredkin(), config=config)
        assert [len(l.gates) for l in stats_a.layers] == [
            len(l.gates) for l in stats_b.layers
        ]


class TestTrapChanges:
    def test_both_slm_pair_resolved_by_trap_change(self):
        # No AOD atoms at all: every out-of-range CZ must use a trap change.
        c = QuantumCircuit(2)
        c.cz(0, 1)
        spec = HardwareSpec.quera_aquila()
        basis = transpile(c)
        # Place the two atoms at opposite grid corners, far out of range.
        from repro.layout.graphine import GraphineLayout

        layout = GraphineLayout(
            unit_positions=np.array([[0.0, 0.0], [1.0, 1.0]]),
            interaction_radius_unit=0.05,
        )
        state = MachineState(spec, layout)
        scheduler = GateScheduler(basis, state)
        stats = scheduler.run()
        assert stats.both_slm_trap_changes == 1
        assert stats.trap_changes == 1

    def test_trap_change_time_charged(self):
        c = QuantumCircuit(2)
        c.cz(0, 1)
        spec = HardwareSpec.quera_aquila()
        basis = transpile(c)
        from repro.layout.graphine import GraphineLayout

        layout = GraphineLayout(
            unit_positions=np.array([[0.0, 0.0], [1.0, 1.0]]),
            interaction_radius_unit=0.05,
        )
        state = MachineState(spec, layout)
        stats = GateScheduler(basis, state).run()
        # Two trap switches at 100 us each dominate the layer time.
        assert stats.total_time_us >= 200.0
