"""Tests for repro.sweeps.engine: sharded evaluation determinism + resume."""

import hashlib
from pathlib import Path

import pytest

from repro.experiments.common import clear_caches
from repro.sim.noisy import NoisyShotSimulator
from repro.sweeps import SweepGrid, SweepStore, run_sweep
from repro.sweeps.engine import evaluate_tasks, partition_tasks


def quick_grid(**kwargs):
    defaults = dict(
        benchmarks=("ADD",),
        techniques=("parallax", "graphine"),
        spec_axes={"cz_error": (0.002, 0.004, 0.008)},
        shots=200,
        base_seed=11,
    )
    defaults.update(kwargs)
    return SweepGrid(**defaults)


def store_digest(directory) -> dict:
    """Filename -> sha256 of every record file (byte-level store content)."""
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(directory).glob("*.json"))
    }


class TestPartitionTasks:
    def test_balanced_and_order_preserving(self):
        tasks = list(range(10))
        chunks = partition_tasks(tasks, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for chunk in chunks for x in chunk] == tasks

    def test_more_chunks_than_tasks(self):
        chunks = partition_tasks([1, 2], 5)
        assert chunks == [[1], [2]]

    def test_empty(self):
        assert partition_tasks([], 4) == []

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError, match="chunks"):
            partition_tasks([1], 0)


class TestShardedDeterminism:
    def test_store_contents_byte_identical_for_any_eval_jobs(self, tmp_path):
        # The acceptance bar: --eval-jobs N writes byte-identical records
        # for N in {1, 2, 4}.
        grid = quick_grid()
        digests = {}
        for workers in (1, 2, 4):
            directory = tmp_path / f"w{workers}"
            run_sweep(grid, SweepStore(directory), eval_workers=workers)
            digests[workers] = store_digest(directory)
        assert len(digests[1]) == grid.size
        assert digests[1] == digests[2] == digests[4]

    def test_reports_identical_for_any_eval_jobs(self):
        grid = quick_grid()
        clear_caches()
        one = run_sweep(grid, eval_workers=1)
        clear_caches()
        four = run_sweep(grid, eval_workers=4)
        assert one.records == four.records

    def test_in_memory_records_match_store_round_trip(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        report = run_sweep(quick_grid(), store, eval_workers=2)
        for record in report.records:
            assert store.get(record["key"]) == record


class TestResumePartialShard:
    def test_resume_completes_a_partially_evaluated_store(self, tmp_path):
        # A store holding only part of the grid (exactly what a kill
        # mid-shard leaves behind, since workers persist record by record)
        # must be completed by a resumed sharded run, bit-identically.
        grid = quick_grid()
        reference = run_sweep(grid, SweepStore(tmp_path / "ref"))

        store = SweepStore(tmp_path / "s")
        partial = run_sweep(grid, store, limit=2)
        assert partial.computed == 2
        assert len(store) == 2

        resumed = run_sweep(grid, store, resume=True, eval_workers=2)
        assert resumed.resumed == 2
        assert resumed.computed == grid.size - 2
        assert resumed.records == reference.records
        assert store_digest(tmp_path / "ref") == store_digest(tmp_path / "s")

    def test_kill_mid_shard_keeps_finished_records(self, tmp_path, monkeypatch):
        grid = quick_grid()
        store = SweepStore(tmp_path / "s")
        real_run = NoisyShotSimulator.run
        calls = {"n": 0}

        def dying_run(self, shots=8000):
            if calls["n"] >= 3:
                raise KeyboardInterrupt("killed mid-shard")
            calls["n"] += 1
            return real_run(self, shots)

        monkeypatch.setattr(NoisyShotSimulator, "run", dying_run)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(grid, store)  # in-process shard so the patch applies
        assert len(store) == 3

        monkeypatch.setattr(NoisyShotSimulator, "run", real_run)
        resumed = run_sweep(grid, store, resume=True, eval_workers=2)
        assert resumed.resumed == 3
        assert resumed.computed == grid.size - 3
        reference = run_sweep(grid, SweepStore(tmp_path / "ref"))
        assert resumed.records == reference.records


class TestEvaluateTasksDirect:
    def test_empty_task_list(self):
        assert evaluate_tasks([], workers=4) == []

    def test_progress_messages_emitted(self, tmp_path):
        messages = []
        run_sweep(quick_grid(), eval_workers=2, log=messages.append)
        assert any("evaluat" in m for m in messages)
