"""Tests for repro.transpile.euler: ZYZ resynthesis."""

import math

import numpy as np
import pytest

from repro.circuit.gate import Gate
from repro.circuit.matrices import gate_unitary, u3_matrix
from repro.transpile.euler import is_identity_up_to_phase, zyz_angles


def equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> bool:
    idx = np.unravel_index(np.abs(b).argmax(), b.shape)
    if abs(a[idx]) < atol:
        return False
    phase = a[idx] / b[idx]
    return np.allclose(a, phase * b, atol=atol)


class TestZyzAngles:
    @pytest.mark.parametrize("name", ["id", "x", "y", "z", "h", "s", "t", "sx"])
    def test_fixed_gates_resynthesize(self, name):
        u = gate_unitary(Gate(name, (0,)))
        theta, phi, lam = zyz_angles(u)
        assert equal_up_to_phase(u3_matrix(theta, phi, lam), u)

    @pytest.mark.parametrize("angles", [
        (0.3, 0.7, -0.2), (math.pi, 0.0, 0.0), (0.0, 0.5, 0.5),
        (math.pi / 2, -math.pi, math.pi / 4), (2.9, 1.1, -2.2),
    ])
    def test_u3_round_trip(self, angles):
        u = u3_matrix(*angles)
        resyn = u3_matrix(*zyz_angles(u))
        assert equal_up_to_phase(resyn, u)

    def test_identity_gives_zero_theta(self):
        theta, _, _ = zyz_angles(np.eye(2, dtype=complex))
        assert theta == pytest.approx(0.0, abs=1e-9)

    def test_angles_wrapped(self):
        u = u3_matrix(0.4, 5 * math.pi, -5 * math.pi)
        theta, phi, lam = zyz_angles(u)
        for angle in (theta, phi, lam):
            assert -math.pi - 1e-9 <= angle <= math.pi + 1e-9

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError, match="unitary"):
            zyz_angles(np.array([[1, 1], [0, 1]], dtype=complex))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="2x2"):
            zyz_angles(np.eye(3, dtype=complex))

    def test_global_phase_invariance(self):
        u = u3_matrix(0.9, 0.4, 0.2)
        angles_a = zyz_angles(u)
        angles_b = zyz_angles(np.exp(1j * 1.234) * u)
        resyn_a = u3_matrix(*angles_a)
        resyn_b = u3_matrix(*angles_b)
        assert equal_up_to_phase(resyn_a, resyn_b)


class TestIsIdentityUpToPhase:
    def test_identity(self):
        assert is_identity_up_to_phase(np.eye(2, dtype=complex))

    def test_phased_identity(self):
        assert is_identity_up_to_phase(np.exp(1j * 0.8) * np.eye(2))

    def test_x_is_not(self):
        assert not is_identity_up_to_phase(gate_unitary(Gate("x", (0,))))

    def test_z_is_not(self):
        # diag(1, -1) differs in relative phase.
        assert not is_identity_up_to_phase(gate_unitary(Gate("z", (0,))))

    def test_near_identity_within_tolerance(self):
        u = u3_matrix(1e-12, 0, 0)
        assert is_identity_up_to_phase(u)
