"""Property-based tests (hypothesis) for the QASM front-end.

Three laws, over randomly generated circuits and byte-level corruptions:

1. **Round-trip** -- ``parse_qasm(to_qasm(c))`` is structurally identical
   to ``c``: same gate sequence, same qubit indices, params equal to
   1e-12.
2. **Fixed point** -- export/parse/export is the identity on bytes: one
   round trip canonicalizes, a second changes nothing.
3. **Robustness** -- corrupting any single character of a valid program
   either still parses or raises :class:`QasmSyntaxError`; it never
   escapes as another exception type (and never hangs -- enforced by the
   hypothesis deadline on example size).
"""

import math

from hypothesis import given, settings, strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.qasm.exporter import to_qasm
from repro.qasm.lexer import QasmSyntaxError
from repro.qasm.parser import parse_qasm

# Gates the exporter can emit and the parser maps straight back onto the
# IR: (name, arity, num_params).  A representative slice of qelib1.inc
# covering 1q/2q/3q, parameterless and parameterized.
GATE_MENU = [
    ("x", 1, 0),
    ("h", 1, 0),
    ("sdg", 1, 0),
    ("rz", 1, 1),
    ("ry", 1, 1),
    ("u3", 1, 3),
    ("cx", 2, 0),
    ("cz", 2, 0),
    ("swap", 2, 0),
    ("rzz", 2, 1),
    ("ccz", 3, 0),
]

angles = st.floats(
    min_value=-4 * math.pi,
    max_value=4 * math.pi,
    allow_nan=False,
    allow_infinity=False,
)


@st.composite
def circuits(draw, max_qubits=5, max_gates=12):
    num_qubits = draw(st.integers(1, max_qubits))
    circuit = QuantumCircuit(num_qubits)
    menu = [g for g in GATE_MENU if g[1] <= num_qubits]
    for _ in range(draw(st.integers(0, max_gates))):
        name, arity, num_params = draw(st.sampled_from(menu))
        qubits = tuple(
            draw(
                st.lists(
                    st.integers(0, num_qubits - 1),
                    min_size=arity,
                    max_size=arity,
                    unique=True,
                )
            )
        )
        params = tuple(draw(angles) for _ in range(num_params))
        circuit.append(Gate(name, qubits, params))
    return circuit


class TestRoundTrip:
    @given(circuit=circuits())
    @settings(max_examples=120, deadline=None)
    def test_structural_identity(self, circuit):
        parsed = parse_qasm(to_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert len(parsed) == len(circuit)
        for got, want in zip(parsed.gates, circuit.gates):
            assert got.name == want.name
            assert got.qubits == want.qubits
            assert len(got.params) == len(want.params)
            for a, b in zip(got.params, want.params):
                assert abs(a - b) <= 1e-12

    @given(circuit=circuits())
    @settings(max_examples=120, deadline=None)
    def test_export_parse_export_fixed_point(self, circuit):
        once = to_qasm(parse_qasm(to_qasm(circuit)))
        twice = to_qasm(parse_qasm(once))
        assert once == twice

    @given(circuit=circuits())
    @settings(max_examples=60, deadline=None)
    def test_measure_round_trip(self, circuit):
        for q in range(circuit.num_qubits):
            circuit.append(Gate("measure", (q,), ()))
        parsed = parse_qasm(to_qasm(circuit))
        measured = [g for g in parsed.gates if g.name == "measure"]
        assert [g.qubits for g in measured] == [
            (q,) for q in range(circuit.num_qubits)
        ]


# The corruption alphabet mixes structure-relevant characters with noise.
CORRUPTION_CHARS = st.sampled_from(
    list("{}[]();,->*/+-^\"'\\ \t\n\x00abcxyz0189.eE_ #%$!?")
)


class TestSingleCharacterCorruption:
    @given(
        circuit=circuits(max_qubits=3, max_gates=5),
        position=st.integers(0, 10_000),
        replacement=CORRUPTION_CHARS,
        mode=st.sampled_from(["replace", "insert", "delete"]),
    )
    @settings(max_examples=300, deadline=None)
    def test_never_crashes(self, circuit, position, replacement, mode):
        source = to_qasm(circuit)
        position %= len(source)
        if mode == "replace":
            corrupted = source[:position] + replacement + source[position + 1 :]
        elif mode == "insert":
            corrupted = source[:position] + replacement + source[position:]
        else:
            corrupted = source[:position] + source[position + 1 :]
        try:
            parse_qasm(corrupted)
        except QasmSyntaxError as exc:
            assert exc.line >= 0
            assert exc.col >= 0
        # Any other exception type is a bug and fails the test naturally.
