"""Tests for repro.sweeps.analysis: ResultTable, marginals, crossovers."""

import math

import pytest

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.sweeps import SweepGrid, SweepStore, run_sweep
from repro.sweeps.analysis import (
    METRIC_COLUMNS,
    OUTCOME_COLUMNS,
    ResultTable,
    render_store_summary,
)


def make_result(technique="parallax", num_cz=100, **kwargs):
    defaults = dict(
        technique=technique,
        circuit_name="t",
        num_qubits=4,
        spec=HardwareSpec.quera_aquila(),
        num_cz=num_cz,
        runtime_us=100.0,
    )
    defaults.update(kwargs)
    return CompilationResult(**defaults)


def crossing_rows():
    """Two linear series in `x` that cross between x=2 and x=3.

    a(x) = 10 - x   -> 9, 8, 7, 6
    b(x) = 4 + x    -> 5, 6, 7.5... crafted below so the brute-force
    reference interpolation is easy to state in the test.
    """
    a_vals = {1.0: 9.0, 2.0: 8.0, 3.0: 7.0, 4.0: 6.0}
    b_vals = {1.0: 5.0, 2.0: 6.5, 3.0: 8.0, 4.0: 9.5}
    rows = []
    for x in sorted(a_vals):
        rows.append({"benchmark": "B", "technique": "a", "x": x,
                     "analytic_success": a_vals[x]})
        rows.append({"benchmark": "B", "technique": "b", "x": x,
                     "analytic_success": b_vals[x]})
    return rows, a_vals, b_vals


@pytest.fixture(scope="module")
def sweep_table(tmp_path_factory):
    store = SweepStore(tmp_path_factory.mktemp("store"))
    grid = SweepGrid(
        benchmarks=("ADD",),
        techniques=("parallax", "graphine"),
        spec_axes={"cz_error": (0.002, 0.004, 0.008)},
        noise_axes={"include_readout": (False, True)},
        shots=300,
        base_seed=5,
    )
    run_sweep(grid, store)
    return ResultTable.from_store(store)


class TestConstruction:
    def test_from_store_has_unified_schema(self, sweep_table):
        table = sweep_table
        assert len(table) == 12
        for column in ("benchmark", "technique", "cz_error",
                       "noise_include_readout", "num_cz", "runtime_us",
                       "analytic_success", "success_rate", "stderr"):
            assert column in table.names
        assert all(v in (0.002, 0.004, 0.008) for v in table.column("cz_error"))

    def test_store_load_is_key_ordered_and_deterministic(self, tmp_path):
        store = SweepStore(tmp_path / "s")
        for bench, key in (("X", "b" * 64), ("Y", "a" * 64)):
            store.put(key, {"scenario": {"benchmark": bench},
                            "analytic_success": 1.0})
        t1 = ResultTable.from_store(store)
        t2 = ResultTable.from_store(store)
        assert t1.rows == t2.rows
        # Store iteration is key-sorted, so "a"*64 (benchmark Y) leads.
        assert t1.column("benchmark") == ["Y", "X"]

    def test_from_compilations_rows(self):
        table = ResultTable.from_compilations(
            [
                ("B1", "parallax", make_result(num_cz=10)),
                ("B1", "eldi", make_result("eldi", num_cz=40), {"arm": 1}),
            ]
        )
        assert len(table) == 2
        assert table.column("num_cz") == [10, 40]
        assert table.column("arm") == [None, 1]
        assert all(v is None for v in table.column("success_rate"))
        assert all(0 <= v <= 1 for v in table.column("analytic_success"))

    def test_concat_unions_columns(self):
        a = ResultTable.from_rows([{"benchmark": "A", "num_cz": 1}])
        b = ResultTable.from_rows([{"benchmark": "B", "aod_count": 5}])
        merged = ResultTable.concat([a, b])
        assert len(merged) == 2
        assert merged.column("aod_count") == [None, 5]

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            ResultTable({"a": [1, 2], "b": [1]})

    def test_unknown_column_named_in_error(self, sweep_table):
        with pytest.raises(KeyError, match="no column 'nope'"):
            sweep_table.column("nope")


class TestFilterAxesDistinct:
    def test_filter(self, sweep_table):
        sub = sweep_table.filter(technique="parallax", cz_error=0.004)
        assert len(sub) == 2
        assert set(sub.column("noise_include_readout")) == {False, True}

    def test_axes_detected(self, sweep_table):
        axes = sweep_table.axes()
        assert "cz_error" in axes
        assert "technique" in axes
        assert "noise_include_readout" in axes
        assert "seed" not in axes
        assert "analytic_success" not in axes

    def test_numeric_axes_exclude_categoricals_and_bools(self, sweep_table):
        numeric = sweep_table.numeric_axes()
        assert "cz_error" in numeric
        assert "technique" not in numeric
        assert "noise_include_readout" not in numeric

    def test_distinct_sorted(self, sweep_table):
        assert sweep_table.distinct("cz_error") == [0.002, 0.004, 0.008]


class TestMarginal:
    def test_marginal_matches_brute_force(self, sweep_table):
        marg = sweep_table.marginal(
            value="success_rate", over="cz_error",
            group_by=("benchmark", "technique"),
        )
        rows = {  # brute-force reference straight off the flat rows
            (r["benchmark"], r["technique"], r["cz_error"]): []
            for r in sweep_table.row_dicts()
        }
        for r in sweep_table.row_dicts():
            rows[r["benchmark"], r["technique"], r["cz_error"]].append(
                r["success_rate"]
            )
        for row in marg.row_dicts():
            expected = rows[row["benchmark"], row["technique"], row["cz_error"]]
            assert row["n"] == len(expected) == 2
            assert row["success_rate"] == pytest.approx(
                sum(expected) / len(expected)
            )

    def test_axis_values_ascend_within_groups(self, sweep_table):
        marg = sweep_table.marginal(value="analytic_success", over="cz_error")
        per_group = {}
        for row in marg.row_dicts():
            per_group.setdefault((row["benchmark"], row["technique"]), []).append(
                row["cz_error"]
            )
        for values in per_group.values():
            assert values == sorted(values)

    def test_none_values_ignored(self):
        table = ResultTable.from_rows(
            [
                {"technique": "a", "analytic_success": 0.5},
                {"technique": "a", "analytic_success": None},
            ]
        )
        marg = table.marginal(group_by=("technique",))
        assert marg.column("analytic_success") == [0.5]
        assert marg.column("n") == [1]

    def test_aggregates(self):
        table = ResultTable.from_rows(
            [{"technique": "a", "num_cz": v} for v in (1, 2, 3, 10)]
        )
        assert table.marginal("num_cz", group_by=("technique",), agg="min").column("num_cz") == [1]
        assert table.marginal("num_cz", group_by=("technique",), agg="max").column("num_cz") == [10]
        assert table.marginal("num_cz", group_by=("technique",), agg="median").column("num_cz") == [2.5]

    def test_unknown_agg_rejected(self, sweep_table):
        with pytest.raises(ValueError, match="unknown agg"):
            sweep_table.marginal(agg="mode")


class TestPivot:
    def test_pivot_values_and_order(self):
        table = ResultTable.from_rows(
            [
                {"benchmark": "B2", "technique": "x", "num_cz": 7},
                {"benchmark": "B2", "technique": "y", "num_cz": 9},
                {"benchmark": "B1", "technique": "x", "num_cz": 1},
                {"benchmark": "B1", "technique": "y", "num_cz": 2},
            ]
        )
        pivoted = table.pivot("benchmark", "technique", "num_cz",
                              column_order=("y", "x"))
        # First-appearance index order is preserved (figure tables rely
        # on benchmark order), columns follow column_order.
        assert pivoted.headers == ("benchmark", "y", "x")
        assert pivoted.rows == (("B2", 9, 7), ("B1", 2, 1))

    def test_single_cell_values_keep_type(self):
        table = ResultTable.from_rows(
            [{"benchmark": "B", "technique": "x", "num_cz": 7}]
        )
        cell = table.pivot("benchmark", "technique", "num_cz").rows[0][1]
        assert cell == 7 and isinstance(cell, int)

    def test_missing_cells_are_none(self):
        table = ResultTable.from_rows(
            [
                {"benchmark": "B1", "technique": "x", "num_cz": 1},
                {"benchmark": "B2", "technique": "y", "num_cz": 2},
            ]
        )
        pivoted = table.pivot("benchmark", "technique", "num_cz",
                              column_order=("x", "y"))
        assert pivoted.rows == (("B1", 1, None), ("B2", None, 2))


class TestCrossovers:
    def test_crossover_matches_brute_force_reference(self):
        rows, a_vals, b_vals = crossing_rows()
        table = ResultTable.from_rows(rows)
        found = table.crossovers(axis="x", value="analytic_success")
        assert len(found) == 1
        crossing = found[0]
        # Brute-force reference: on [2, 3] the difference a-b goes from
        # +1.5 to -1.0, so the crossing sits at t = 1.5/2.5 of the segment.
        t = 1.5 / 2.5
        x_ref = 2.0 + t * 1.0
        y_ref = 8.0 + t * (7.0 - 8.0)
        assert crossing.axis_value == pytest.approx(x_ref)
        assert crossing.metric_value == pytest.approx(y_ref)
        assert crossing.first == "a"  # a led below the crossing
        assert crossing.second == "b"  # b overtakes as x grows
        assert crossing.group == ("B",)

    def test_no_crossover_when_series_never_meet(self):
        rows = []
        for x in (1.0, 2.0, 3.0):
            rows.append({"benchmark": "B", "technique": "a", "x": x,
                         "analytic_success": 1.0 + x})
            rows.append({"benchmark": "B", "technique": "b", "x": x,
                         "analytic_success": x})
        table = ResultTable.from_rows(rows)
        assert table.crossovers(axis="x") == []

    def test_exact_grid_point_touch_is_reported(self):
        rows = []
        for x, (ya, yb) in {1.0: (2.0, 1.0), 2.0: (1.5, 1.5), 3.0: (1.0, 2.0)}.items():
            rows.append({"benchmark": "B", "technique": "a", "x": x,
                         "analytic_success": ya})
            rows.append({"benchmark": "B", "technique": "b", "x": x,
                         "analytic_success": yb})
        table = ResultTable.from_rows(rows)
        found = table.crossovers(axis="x")
        assert len(found) == 1
        assert found[0].axis_value == pytest.approx(2.0)
        assert found[0].metric_value == pytest.approx(1.5)

    def test_zero_plateau_flip_is_reported(self):
        # Series exactly equal over consecutive grid points, with the lead
        # flipping across the plateau: diffs +0.2, 0, 0, -0.2.
        rows = []
        for x, (ya, yb) in {1.0: (1.2, 1.0), 2.0: (1.0, 1.0),
                            3.0: (0.9, 0.9), 4.0: (0.6, 0.8)}.items():
            rows.append({"benchmark": "B", "technique": "a", "x": x,
                         "analytic_success": ya})
            rows.append({"benchmark": "B", "technique": "b", "x": x,
                         "analytic_success": yb})
        found = ResultTable.from_rows(rows).crossovers(axis="x")
        assert len(found) == 1
        assert found[0].axis_value == pytest.approx(3.0)  # plateau right edge
        assert found[0].first == "a" and found[0].second == "b"

    def test_leading_zero_diff_is_not_a_crossover(self):
        # Equal at the first grid point, then one series leads throughout:
        # no established lead was overturned, so nothing to report.
        rows = []
        for x, (ya, yb) in {1.0: (1.0, 1.0), 2.0: (0.9, 0.8),
                            3.0: (0.8, 0.6)}.items():
            rows.append({"benchmark": "B", "technique": "a", "x": x,
                         "analytic_success": ya})
            rows.append({"benchmark": "B", "technique": "b", "x": x,
                         "analytic_success": yb})
        assert ResultTable.from_rows(rows).crossovers(axis="x") == []

    def test_describe_is_readable(self):
        rows, _, _ = crossing_rows()
        crossing = ResultTable.from_rows(rows).crossovers(axis="x")[0]
        text = crossing.describe()
        assert "overtakes" in text and "x=" in text

    def test_store_to_crossover_end_to_end(self, tmp_path):
        # Full path: records on disk -> from_store -> crossover report,
        # with a crossing whose location is known in closed form.
        store = SweepStore(tmp_path / "s")
        series = {
            "slow": {0.001: 0.9, 0.002: 0.7, 0.004: 0.3},
            "steep": {0.001: 0.95, 0.002: 0.6, 0.004: 0.1},
        }
        key = 0
        for tech, points in series.items():
            for cz, rate in points.items():
                key += 1
                # Distinct leading chars: store filenames use key[:40].
                store.put(
                    f"{key:x}" * 64,
                    {
                        "scenario": {
                            "benchmark": "ADD",
                            "technique": tech,
                            "shots": 1000,
                            "seed": key,
                            "spec_name": "synthetic",
                            "spec_overrides": {"cz_error": cz},
                            "noise": {},
                        },
                        "result": {"num_cz": 1, "runtime_us": 1.0},
                        "outcome": {"success_rate": rate, "stderr": 0.01},
                        "analytic_success": rate,
                    },
                )
        assert len(store) == 6
        table = ResultTable.from_store(store)
        found = table.crossovers(axis="cz_error", value="success_rate")
        assert len(found) == 1
        crossing = found[0]
        # Brute force on [0.001, 0.002]: diff steep-slow goes +0.05 -> -0.1.
        t = 0.05 / 0.15
        assert crossing.axis_value == pytest.approx(0.001 + t * 0.001)
        assert crossing.metric_value == pytest.approx(0.95 + t * (0.6 - 0.95))
        assert crossing.first == "steep" and crossing.second == "slow"
        summary = render_store_summary(table, metric="success_rate")
        assert "slow overtakes steep" in summary

    def test_seeded_sweep_crossover_matches_reference(self, sweep_table):
        # End-to-end acceptance: crossovers computed on a real seeded sweep
        # match a brute-force scan of the marginal series.
        found = sweep_table.crossovers(axis="cz_error", value="success_rate")
        series: dict = {}
        for row in sweep_table.marginal(
            value="success_rate", over="cz_error",
            group_by=("benchmark", "technique"),
        ).row_dicts():
            series.setdefault(row["technique"], {})[row["cz_error"]] = row[
                "success_rate"
            ]
        expected = []
        techs = sorted(series)
        for i, a in enumerate(techs):
            for b in techs[i + 1:]:
                xs = sorted(set(series[a]) & set(series[b]))
                for x0, x1 in zip(xs, xs[1:]):
                    d0 = series[a][x0] - series[b][x0]
                    d1 = series[a][x1] - series[b][x1]
                    if d0 * d1 < 0:
                        t = d0 / (d0 - d1)
                        expected.append((a, b, x0 + t * (x1 - x0)))
        assert len(found) == len(expected)
        for crossing, (a, b, x_ref) in zip(found, expected):
            assert {crossing.first, crossing.second} == {a, b}
            assert crossing.axis_value == pytest.approx(x_ref)


class TestRendering:
    def test_render_text(self, sweep_table):
        text = sweep_table.marginal().render()
        assert "benchmark" in text and "technique" in text

    def test_to_csv_round_trips_shape(self, sweep_table):
        import csv as csv_module
        import io

        text = sweep_table.to_csv()
        parsed = list(csv_module.reader(io.StringIO(text)))
        assert tuple(parsed[0]) == sweep_table.names
        assert len(parsed) == len(sweep_table) + 1

    def test_none_cells_render_empty_in_csv(self):
        table = ResultTable.from_rows([{"a": None, "b": 1}])
        assert table.to_csv().splitlines()[1] == ",1"

    def test_duck_typed_with_markdown_report(self, sweep_table):
        from repro.analysis.report import render_markdown_report

        text = render_markdown_report("R", [sweep_table.marginal()])
        assert "| benchmark |" in text

    def test_store_summary_mentions_crossovers_and_axes(self, sweep_table):
        text = render_store_summary(sweep_table)
        assert "crossover" in text
        assert "axes:" in text
        assert "cz_error" in text

    def test_store_summary_empty(self):
        assert render_store_summary(ResultTable({})) == "no records"


class TestSchemaColumns:
    def test_metric_columns_cover_outcome(self):
        assert set(OUTCOME_COLUMNS) <= set(METRIC_COLUMNS)

    def test_stderr_positive_on_sampled_rows(self, sweep_table):
        assert all(v > 0 for v in sweep_table.column("stderr"))

    def test_analytic_success_finite(self, sweep_table):
        assert all(
            v is not None and math.isfinite(v)
            for v in sweep_table.column("analytic_success")
        )
