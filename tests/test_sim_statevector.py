"""Tests for repro.sim.statevector."""

import math

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.circuit.matrices import circuit_unitary
from repro.sim.statevector import StateVector, sample_counts, simulate_circuit


class TestStateVector:
    def test_initial_state(self):
        sv = StateVector(2)
        assert sv.amplitudes[0] == 1.0
        assert sv.probabilities().sum() == pytest.approx(1.0)

    def test_qubit_bounds(self):
        with pytest.raises(ValueError):
            StateVector(0)
        with pytest.raises(ValueError):
            StateVector(23)

    def test_x_flips(self):
        sv = StateVector(2).apply(Gate("x", (1,)))
        assert sv.probability_of("01") == pytest.approx(1.0)

    def test_h_superposition(self):
        sv = StateVector(1).apply(Gate("h", (0,)))
        probs = sv.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.5)

    def test_bell_state(self):
        sv = StateVector(2).run([Gate("h", (0,)), Gate("cx", (0, 1))])
        probs = sv.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)
        assert probs[0b01] == pytest.approx(0.0, abs=1e-12)

    def test_cx_direction_matters(self):
        # |10> (qubit1=1): cx(0,1) does nothing; cx(1,0) flips qubit 0.
        base = [Gate("x", (1,))]
        sv_a = StateVector(2).run(base + [Gate("cx", (0, 1))])
        sv_b = StateVector(2).run(base + [Gate("cx", (1, 0))])
        assert sv_a.probability_of("01") == pytest.approx(1.0)
        assert sv_b.probability_of("11") == pytest.approx(1.0)

    def test_cz_phase(self):
        sv = StateVector(2).run(
            [Gate("x", (0,)), Gate("x", (1,)), Gate("cz", (0, 1))]
        )
        assert sv.amplitudes[0b11] == pytest.approx(-1.0)

    def test_matches_dense_unitary_on_random_circuit(self):
        c = QuantumCircuit(3)
        c.h(0).cx(0, 1).rz(1, 0.7).cswap(0, 1, 2).ry(2, 0.3).cz(0, 2)
        expected = circuit_unitary(c.gates, 3)[:, 0]
        sv = simulate_circuit(c)
        np.testing.assert_allclose(sv.amplitudes, expected, atol=1e-10)

    def test_nonadjacent_two_qubit_gate(self):
        c = QuantumCircuit(4).x(0).cx(0, 3)
        sv = simulate_circuit(c)
        assert sv.probability_of("1001") == pytest.approx(1.0)

    def test_barrier_noop(self):
        sv = StateVector(1).apply(Gate("barrier", (0,)))
        assert sv.amplitudes[0] == 1.0

    def test_measure_gate_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            StateVector(1).apply(Gate("measure", (0,)))

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            StateVector(2).apply(Gate("h", (5,)))

    def test_norm_preserved_through_long_circuit(self):
        rng = np.random.default_rng(0)
        c = QuantumCircuit(4)
        for _ in range(50):
            q = int(rng.integers(0, 4))
            c.u3(q, *rng.uniform(0, 2 * math.pi, 3))
            a, b = rng.choice(4, size=2, replace=False)
            c.cz(int(a), int(b))
        sv = simulate_circuit(c)
        assert sv.probabilities().sum() == pytest.approx(1.0)


class TestSampling:
    def test_deterministic_state_sampling(self):
        c = QuantumCircuit(2).x(0)
        counts = sample_counts(c, shots=100)
        assert counts == {"10": 100}

    def test_bell_sampling_balanced(self):
        c = QuantumCircuit(2).h(0).cx(0, 1)
        counts = sample_counts(c, shots=4000, seed=1)
        assert set(counts) == {"00", "11"}
        assert abs(counts["00"] - 2000) < 200

    def test_seeded_reproducibility(self):
        c = QuantumCircuit(2).h(0).h(1)
        assert sample_counts(c, 100, seed=5) == sample_counts(c, 100, seed=5)

    def test_bitstring_length_checked(self):
        with pytest.raises(ValueError, match="length"):
            StateVector(2).probability_of("101")


class TestFidelity:
    def test_self_fidelity_one(self):
        sv = simulate_circuit(QuantumCircuit(2).h(0).cx(0, 1))
        assert sv.fidelity_with(sv) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        a = StateVector(1)
        b = StateVector(1).apply(Gate("x", (0,)))
        assert a.fidelity_with(b) == pytest.approx(0.0, abs=1e-12)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            StateVector(1).fidelity_with(StateVector(2))


class TestCompiledScheduleEquivalence:
    """The crown-jewel invariant: Parallax schedules implement the circuit."""

    @pytest.mark.parametrize("builder", [
        lambda c: c.cswap(0, 1, 2),
        lambda c: c.h(0).ccx(0, 1, 2).rz(2, 0.4),
        lambda c: c.h(0).cx(0, 1).cx(1, 2).cz(0, 2).t(1),
    ])
    def test_parallax_schedule_preserves_state(self, builder):
        from repro.core.compiler import ParallaxCompiler
        from repro.hardware.spec import HardwareSpec
        from repro.transpile import transpile

        circuit = QuantumCircuit(3)
        builder(circuit)
        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(circuit)
        flat = [g for layer in result.layers for g in layer.gates]
        scheduled = StateVector(3).run(flat)
        reference = simulate_circuit(transpile(circuit))
        assert scheduled.fidelity_with(reference) == pytest.approx(1.0)

    def test_transpiled_benchmark_preserves_state(self):
        from repro.benchcircuits import hidden_linear_function
        from repro.transpile import transpile

        circuit = hidden_linear_function(num_qubits=6, seed=3)
        original = simulate_circuit(circuit)
        basis = simulate_circuit(transpile(circuit))
        assert basis.fidelity_with(original) == pytest.approx(1.0)
