"""Tests for repro.hardware.aod: ordering and tandem constraints."""

import numpy as np
import pytest

from repro.hardware.aod import AOD, AODOrderError
from repro.hardware.spec import HardwareSpec


@pytest.fixture
def aod():
    return AOD(HardwareSpec.quera_aquila(), line_gap_um=1.0)


class TestAssignment:
    def test_assign_and_query(self, aod):
        aod.assign_atom(5, row=0, col=0, x=10.0, y=20.0)
        assert aod.holds(5)
        assert aod.atom_lines(5) == (0, 0)
        np.testing.assert_allclose(aod.atom_position(5), [10.0, 20.0])

    def test_assign_same_qubit_twice_rejected(self, aod):
        aod.assign_atom(1, 0, 0, 1.0, 1.0)
        with pytest.raises(ValueError, match="already assigned"):
            aod.assign_atom(1, 1, 1, 5.0, 5.0)

    def test_row_ordering_enforced_on_assign(self, aod):
        aod.assign_atom(0, row=1, col=0, x=0.0, y=10.0)
        # Row 2 must be above row 1.
        with pytest.raises(AODOrderError):
            aod.assign_atom(1, row=2, col=1, x=5.0, y=9.0)

    def test_col_ordering_enforced_on_assign(self, aod):
        aod.assign_atom(0, row=0, col=1, x=10.0, y=0.0)
        with pytest.raises(AODOrderError):
            aod.assign_atom(1, row=1, col=2, x=9.0, y=5.0)

    def test_failed_col_assign_rolls_back_row(self, aod):
        aod.assign_atom(0, row=0, col=1, x=10.0, y=0.0)
        with pytest.raises(AODOrderError):
            aod.assign_atom(1, row=1, col=2, x=5.0, y=3.0)
        # Row 1's tentative coordinate must have been rolled back.
        assert np.isnan(aod.row_y[1])

    def test_tandem_atoms_share_row_coordinate(self, aod):
        aod.assign_atom(0, row=0, col=0, x=0.0, y=5.0)
        aod.assign_atom(1, row=0, col=1, x=10.0, y=5.0)
        assert aod.row_atoms[0] == {0, 1}

    def test_conflicting_row_coordinate_rejected(self, aod):
        aod.assign_atom(0, row=0, col=0, x=0.0, y=5.0)
        with pytest.raises(ValueError, match="row 0 already"):
            aod.assign_atom(1, row=0, col=1, x=10.0, y=6.0)

    def test_release_clears_lines(self, aod):
        aod.assign_atom(0, 0, 0, 1.0, 2.0)
        aod.release_atom(0)
        assert not aod.holds(0)
        assert np.isnan(aod.row_y[0]) and np.isnan(aod.col_x[0])

    def test_release_keeps_shared_line(self, aod):
        aod.assign_atom(0, row=0, col=0, x=0.0, y=5.0)
        aod.assign_atom(1, row=0, col=1, x=10.0, y=5.0)
        aod.release_atom(0)
        assert aod.row_y[0] == 5.0  # still held by qubit 1

    def test_line_out_of_range(self, aod):
        with pytest.raises(ValueError, match="out of range"):
            aod.assign_atom(0, row=99, col=0, x=0.0, y=0.0)


class TestMovement:
    def test_move_row_returns_delta_and_atoms(self, aod):
        aod.assign_atom(0, 0, 0, 0.0, 5.0)
        delta, atoms = aod.move_row(0, 8.0)
        assert delta == pytest.approx(3.0)
        assert atoms == [0]
        assert aod.row_y[0] == 8.0

    def test_tandem_motion_lists_all_atoms(self, aod):
        aod.assign_atom(0, row=0, col=0, x=0.0, y=5.0)
        aod.assign_atom(1, row=0, col=1, x=10.0, y=5.0)
        _, atoms = aod.move_row(0, 7.0)
        assert atoms == [0, 1]

    def test_rows_cannot_cross(self, aod):
        aod.assign_atom(0, row=0, col=0, x=0.0, y=5.0)
        aod.assign_atom(1, row=1, col=1, x=10.0, y=10.0)
        with pytest.raises(AODOrderError):
            aod.move_row(0, 10.5)

    def test_min_gap_enforced(self, aod):
        aod.assign_atom(0, row=0, col=0, x=0.0, y=5.0)
        aod.assign_atom(1, row=1, col=1, x=10.0, y=10.0)
        with pytest.raises(AODOrderError):
            aod.move_row(0, 9.5)  # within 1.0 um of row 1
        aod.move_row(0, 9.0)  # exactly at the gap is allowed

    def test_cols_cannot_cross(self, aod):
        aod.assign_atom(0, row=0, col=0, x=5.0, y=0.0)
        aod.assign_atom(1, row=1, col=1, x=10.0, y=10.0)
        with pytest.raises(AODOrderError):
            aod.move_col(1, 4.0)

    def test_move_unassigned_row_rejected(self, aod):
        with pytest.raises(ValueError, match="no coordinate"):
            aod.move_row(0, 5.0)

    def test_move_bounds(self, aod):
        aod.assign_atom(0, row=0, col=0, x=0.0, y=5.0)
        aod.assign_atom(1, row=1, col=1, x=10.0, y=10.0)
        aod.assign_atom(2, row=2, col=2, x=20.0, y=20.0)
        lo, hi = aod.row_move_bounds(1)
        assert lo == pytest.approx(6.0)
        assert hi == pytest.approx(19.0)

    def test_unbounded_extremes(self, aod):
        aod.assign_atom(0, row=5, col=5, x=10.0, y=10.0)
        lo, hi = aod.row_move_bounds(5)
        assert lo == -np.inf and hi == np.inf


class TestSnapshot:
    def test_snapshot_restore_round_trip(self, aod):
        aod.assign_atom(0, 0, 0, 1.0, 2.0)
        snap = aod.snapshot()
        aod.move_row(0, 9.0)
        aod.move_col(0, 9.0)
        aod.restore(snap)
        assert aod.row_y[0] == 2.0
        assert aod.col_x[0] == 1.0

    def test_snapshot_is_decoupled(self, aod):
        aod.assign_atom(0, 0, 0, 1.0, 2.0)
        snap = aod.snapshot()
        aod.move_row(0, 9.0)
        row_y, _ = snap
        assert row_y[0] == 2.0
