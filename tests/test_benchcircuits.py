"""Tests for repro.benchcircuits: the Table III workload generators."""

import pytest

from repro.benchcircuits import BENCHMARKS, get_benchmark, tfim, vqe, quantum_volume
from repro.circuit.stats import compute_stats
from repro.transpile import transpile

#: Table III qubit counts, verbatim from the paper.
TABLE_III = {
    "ADD": 9, "ADV": 9, "GCM": 13, "HSB": 16, "HLF": 10, "KNN": 25,
    "MLT": 10, "QAOA": 10, "QEC": 17, "QFT": 10, "QGAN": 39, "QV": 32,
    "SAT": 11, "SECA": 11, "SQRT": 18, "TFIM": 128, "VQE": 28, "WST": 27,
}


class TestRegistry:
    def test_all_18_benchmarks_present(self):
        assert set(BENCHMARKS) == set(TABLE_III)

    @pytest.mark.parametrize("name", sorted(TABLE_III))
    def test_qubit_counts_match_table_iii(self, name):
        assert get_benchmark(name).num_qubits == TABLE_III[name]

    @pytest.mark.parametrize("name", sorted(TABLE_III))
    def test_info_consistent(self, name):
        info = BENCHMARKS[name]
        assert info.num_qubits == TABLE_III[name]
        assert info.description

    def test_case_insensitive_lookup(self):
        assert get_benchmark("qft").num_qubits == 10

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("NOPE")


class TestCircuitProperties:
    @pytest.mark.parametrize("name", sorted(TABLE_III))
    def test_deterministic_generation(self, name):
        a = get_benchmark(name)
        b = get_benchmark(name)
        assert list(a) == list(b)

    @pytest.mark.parametrize("name", sorted(TABLE_III))
    def test_nonempty_with_two_qubit_gates(self, name):
        circuit = get_benchmark(name)
        assert len(circuit) > 0
        stats = compute_stats(transpile(circuit))
        assert stats.num_cz > 0

    @pytest.mark.parametrize("name", sorted(TABLE_III))
    def test_every_qubit_used(self, name):
        circuit = get_benchmark(name)
        assert circuit.used_qubits() == set(range(circuit.num_qubits))

    def test_tfim_is_low_connectivity(self):
        stats = compute_stats(transpile(get_benchmark("TFIM")))
        assert stats.max_degree <= 2

    def test_qv_is_high_connectivity(self):
        stats = compute_stats(transpile(get_benchmark("QV")))
        assert stats.mean_degree > 10

    def test_vqe_is_all_to_all(self):
        stats = compute_stats(transpile(get_benchmark("VQE")))
        assert stats.mean_degree == pytest.approx(27.0)

    def test_cz_scale_order_of_magnitude(self):
        # The paper's Parallax CZ counts; generators should land within a
        # factor of ~2 so the evaluation shapes carry over.
        paper = {"QAOA": 162, "TFIM": 2540, "QV": 1488, "HSB": 3081, "GCM": 528}
        for name, target in paper.items():
            got = compute_stats(transpile(get_benchmark(name))).num_cz
            assert target / 2 <= got <= target * 2, (name, got, target)


class TestParameterization:
    def test_tfim_steps_scale_cz(self):
        small = compute_stats(transpile(tfim(num_qubits=16, steps=2))).num_cz
        large = compute_stats(transpile(tfim(num_qubits=16, steps=4))).num_cz
        assert large == pytest.approx(2 * small, rel=0.1)

    def test_tfim_cz_formula(self):
        # steps * (n-1) RZZ terms, each two CZs.
        stats = compute_stats(transpile(tfim(num_qubits=10, steps=3)))
        assert stats.num_cz == 3 * 9 * 2

    def test_vqe_reps_scale(self):
        small = compute_stats(transpile(vqe(reps=1))).num_cz
        large = compute_stats(transpile(vqe(reps=2))).num_cz
        assert large > small

    def test_qv_depth_default_equals_width(self):
        c = quantum_volume(num_qubits=8)
        stats = compute_stats(transpile(c))
        # 8 rounds x 4 pairs x 3 CZ.
        assert stats.num_cz == 8 * 4 * 3

    def test_seeds_change_random_benchmarks(self):
        from repro.benchcircuits import quantum_advantage

        a = quantum_advantage(seed=1)
        b = quantum_advantage(seed=2)
        assert list(a) != list(b)
