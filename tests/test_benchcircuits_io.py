"""Tests for repro.benchcircuits.io: QASM artifact round-trips."""

import os

import pytest

from repro.benchcircuits import BENCHMARKS, get_benchmark
from repro.benchcircuits.io import (
    benchmark_filename,
    export_benchmark_suite,
    load_benchmark_file,
)
from repro.circuit.stats import compute_stats
from repro.transpile import transpile

SMALL_SUITE = ("ADD", "ADV", "HLF", "QEC", "SECA", "WST")


class TestFilenames:
    def test_canonical_name(self):
        assert benchmark_filename("ADV") == "adv_9.qasm"
        assert benchmark_filename("tfim") == "tfim_128.qasm"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            benchmark_filename("XYZ")


class TestExport:
    def test_export_writes_files(self, tmp_path):
        written = export_benchmark_suite(str(tmp_path), benchmarks=SMALL_SUITE)
        assert set(written) == set(SMALL_SUITE)
        for path in written.values():
            assert os.path.exists(path)

    def test_header_comments(self, tmp_path):
        written = export_benchmark_suite(str(tmp_path), benchmarks=("ADV",))
        text = open(written["ADV"]).read()
        assert text.startswith("// ADV")
        assert "9 qubits" in text

    def test_creates_directory(self, tmp_path):
        target = str(tmp_path / "nested" / "dir")
        export_benchmark_suite(target, benchmarks=("HLF",))
        assert os.path.isdir(target)


class TestRoundTrip:
    @pytest.mark.parametrize("name", SMALL_SUITE)
    def test_gate_list_survives(self, tmp_path, name):
        written = export_benchmark_suite(str(tmp_path), benchmarks=(name,))
        loaded = load_benchmark_file(written[name])
        original = get_benchmark(name)
        assert loaded.num_qubits == original.num_qubits
        kept = [g for g in loaded if g.name != "measure"]
        assert kept == list(original.gates)

    @pytest.mark.parametrize("name", SMALL_SUITE)
    def test_transpiled_stats_identical(self, tmp_path, name):
        written = export_benchmark_suite(str(tmp_path), benchmarks=(name,))
        loaded = load_benchmark_file(written[name])
        a = compute_stats(transpile(get_benchmark(name)))
        b = compute_stats(transpile(loaded))
        assert a.num_cz == b.num_cz
        assert a.num_1q == b.num_1q

    def test_name_recovered(self, tmp_path):
        written = export_benchmark_suite(str(tmp_path), benchmarks=("QEC",))
        loaded = load_benchmark_file(written["QEC"])
        assert loaded.name == "QEC"

    def test_full_suite_exports(self, tmp_path):
        # Every benchmark must serialize without error (loading the largest
        # back is covered by the small-suite parametrization above).
        written = export_benchmark_suite(str(tmp_path))
        assert len(written) == len(BENCHMARKS)
