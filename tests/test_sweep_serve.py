"""The HTTP query daemon: endpoint schemas, ETag generation-tracking,
liveness under concurrent writers, streaming CSV, and error paths.

The daemon is a *read view* over the store, so the invariants mirror the
sidecar suite's: serving may change latency but never bytes.  Every
aggregation endpoint must be byte-identical to its in-process
counterpart (``/csv`` to ``ResultTable.to_csv``, ``/pivot`` to
:func:`~repro.sweeps.analysis.pivot_payload`, ...), a 304 must only ever
be answered for the *current* generation token, and a merge or compact
landing underneath the live daemon must flip the token and serve fresh
bytes -- stale caches are a correctness bug here, not a staleness
nuisance.
"""

import hashlib
import http.client
import json
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.sweeps import ResultTable, SweepStore
from repro.sweeps.analysis import (
    crossover_payload,
    marginal_payload,
    pivot_payload,
)
from repro.sweeps.serve import SweepServer, store_token


def record_for(i: int) -> tuple[str, dict]:
    """One synthetic but schema-complete sweep record."""
    key = hashlib.sha256(f"serve{i}".encode()).hexdigest()
    return key, {
        "scenario": {
            "benchmark": "ADD" if i % 2 else "QAOA",
            "technique": ("parallax", "graphine", "eldi")[i % 3],
            "shots": 100,
            "seed": 1000 + i,
            "spec_name": "quera_aquila",
            "spec_overrides": {"cz_error": 0.001 * (1 + i % 4)},
            "noise": {"include_readout": bool(i % 2)},
            "fingerprints": {"circuit": "c" * 8, "spec": "s" * 8, "config": "g" * 8},
        },
        "result": {
            "num_cz": 10 + i, "num_u3": 5, "num_ccz": 0, "num_swaps": 1,
            "num_moves": 2, "trap_change_events": 0, "num_layers": 4,
            "runtime_us": 12.5 + i,
        },
        "outcome": {
            "shots": 100, "successes": 90 - i, "gate_failures": 5,
            "movement_failures": 3, "decoherence_failures": 1,
            "readout_failures": 1 + i, "success_rate": (90 - i) / 100.0,
            "stderr": 0.03,
        },
        "analytic_success": 0.9 - 0.01 * i,
    }


def filled_store(directory: Path, n: int = 12, merge: bool = True) -> SweepStore:
    store = SweepStore(directory)
    for i in range(n):
        key, record = record_for(i)
        store.put(key, record)
    if merge:
        store.merge()
    return store


@pytest.fixture
def served(tmp_path):
    """A merged store behind a live daemon; yields (store, server, base_url)."""
    store = filled_store(tmp_path / "store")
    server = SweepServer(tmp_path / "store")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield store, server, f"http://127.0.0.1:{server.port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def get(url: str, headers: dict | None = None) -> tuple[int, dict, bytes]:
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as err:
        body = err.read()
        err.close()
        return err.code, dict(err.headers), body


# ---------------------------------------------------------------------------
# store_token
# ---------------------------------------------------------------------------


class TestStoreToken:
    def test_stable_when_nothing_changes(self, tmp_path):
        filled_store(tmp_path)
        assert store_token(tmp_path) == store_token(tmp_path)

    def test_moves_on_loose_write(self, tmp_path):
        store = filled_store(tmp_path)
        before = store_token(tmp_path)
        key, record = record_for(99)
        store.put(key, record)
        assert store_token(tmp_path) != before

    def test_moves_on_compact_and_merge(self, tmp_path):
        store = filled_store(tmp_path, merge=False)
        tokens = {store_token(tmp_path)}
        store.compact()
        tokens.add(store_token(tmp_path))
        store.merge()
        tokens.add(store_token(tmp_path))
        assert len(tokens) == 3

    def test_distinct_stores_distinct_tokens(self, tmp_path):
        filled_store(tmp_path / "a", n=4)
        filled_store(tmp_path / "b", n=5)
        assert store_token(tmp_path / "a") != store_token(tmp_path / "b")


# ---------------------------------------------------------------------------
# Endpoint schemas and parity with the in-process aggregation layer
# ---------------------------------------------------------------------------


class TestEndpoints:
    def test_index_lists_every_endpoint(self, served):
        _, _, base = served
        status, _, body = get(base + "/")
        payload = json.loads(body)
        assert status == 200
        for endpoint in ("/stats", "/columns", "/marginal", "/pivot",
                         "/crossovers", "/csv"):
            assert endpoint in payload["endpoints"]
        assert "mean" in payload["aggregations"]

    def test_stats_schema(self, served):
        store, server, base = served
        status, headers, body = get(base + "/stats")
        payload = json.loads(body)
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        stats = store.stats()
        assert payload["sealed"] == stats.sealed
        assert payload["loose"] == stats.loose
        assert payload["generation"] == stats.generation
        assert payload["etag"] == store_token(store.directory)
        assert headers["ETag"] == f'"{payload["etag"]}"'

    def test_columns_schema(self, served):
        store, _, base = served
        _, _, body = get(base + "/columns")
        payload = json.loads(body)
        table = ResultTable.from_store(store)
        assert payload["names"] == list(table.names)
        assert payload["rows"] == len(table)
        assert payload["axes"] == list(table.axes())
        assert payload["numeric_axes"] == list(table.numeric_axes())
        assert set(payload["metrics"]) <= set(payload["names"])

    def test_record_roundtrip(self, served):
        _, _, base = served
        key, record = record_for(3)
        status, _, body = get(f"{base}/records/{key}")
        assert status == 200
        served_record = json.loads(body)
        # put() stamps an envelope (key, schema/engine versions) around
        # the payload; everything we stored must come back verbatim.
        assert served_record["key"] == key
        for field, value in record.items():
            assert served_record[field] == value

    def test_marginal_pivot_crossovers_match_in_process(self, served):
        store, _, base = served
        table = ResultTable.from_store(store)
        pairs = [
            ("/marginal", marginal_payload(table)),
            ("/marginal?value=success_rate&group_by=technique&agg=max",
             marginal_payload(table, value="success_rate",
                              group_by=("technique",), agg="max")),
            ("/pivot?index=benchmark&column=technique&value=analytic_success",
             pivot_payload(table, index="benchmark", column="technique",
                           value="analytic_success")),
            ("/crossovers?axis=cz_error",
             crossover_payload(table, axis="cz_error")),
        ]
        for path, want in pairs:
            status, _, body = get(base + path)
            assert status == 200, path
            # Both sides through json to normalize tuples vs lists.
            assert json.loads(body) == json.loads(json.dumps(want)), path

    def test_trailing_slash_routes(self, served):
        _, _, base = served
        status, _, body = get(base + "/stats/")
        assert status == 200
        assert "sealed" in json.loads(body)


# ---------------------------------------------------------------------------
# /csv streaming
# ---------------------------------------------------------------------------


class TestCsv:
    def test_byte_identical_to_in_process(self, served):
        store, _, base = served
        status, headers, body = get(base + "/csv")
        assert status == 200
        assert headers["Content-Type"].startswith("text/csv")
        assert body.decode("utf-8") == ResultTable.from_store(store).to_csv()

    def test_streams_chunked(self, served):
        _, server, _ = served
        # urllib reassembles chunks transparently; drop to http.client to
        # see the framing itself.
        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            conn.request("GET", "/csv")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Transfer-Encoding") == "chunked"
            assert response.getheader("Content-Length") is None
            response.read()
        finally:
            conn.close()

    def test_tiny_chunks_reassemble_identically(self, tmp_path):
        store = filled_store(tmp_path / "store")
        want = ResultTable.from_store(store).to_csv()
        server = SweepServer(tmp_path / "store", csv_chunk_rows=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            _, _, body = get(f"http://127.0.0.1:{server.port}/csv")
            assert body.decode("utf-8") == want
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_iter_csv_chunks_join_to_to_csv(self, tmp_path):
        table = ResultTable.from_store(filled_store(tmp_path))
        whole = table.to_csv()
        for chunk_rows in (1, 2, 5, 10_000):
            chunks = list(table.iter_csv(chunk_rows=chunk_rows))
            assert "".join(chunks) == whole
        # The header rides with the first row's chunk: one chunk per row.
        assert len(list(table.iter_csv(chunk_rows=1))) == len(table)
        with pytest.raises(ValueError):
            next(table.iter_csv(chunk_rows=0))


# ---------------------------------------------------------------------------
# ETag / If-None-Match generation tracking
# ---------------------------------------------------------------------------


class TestETag:
    def test_304_on_unchanged_generation(self, served):
        _, _, base = served
        for path in ("/stats", "/columns", "/marginal", "/csv"):
            _, headers, first = get(base + path)
            etag = headers["ETag"]
            assert etag.startswith('"') and etag.endswith('"')
            status, headers2, body = get(
                base + path, {"If-None-Match": etag}
            )
            assert status == 304, path
            assert headers2["ETag"] == etag
            assert body == b""
        status, _, _ = get(base + "/stats", {"If-None-Match": "*"})
        assert status == 304

    def test_stale_etag_gets_fresh_body(self, served):
        _, _, base = served
        status, _, body = get(
            base + "/stats", {"If-None-Match": '"not-the-current-token"'}
        )
        assert status == 200
        assert body

    def test_new_record_flips_etag(self, served):
        store, _, base = served
        _, headers, _ = get(base + "/stats")
        etag = headers["ETag"]
        key, record = record_for(77)
        store.put(key, record)
        status, headers2, body = get(base + "/stats", {"If-None-Match": etag})
        assert status == 200
        assert headers2["ETag"] != etag
        payload = json.loads(body)
        assert payload["loose"] == 1  # the new record is visible

    def test_live_merge_flips_etag_and_serves_fresh_bytes(self, served):
        store, _, base = served
        _, headers, stale_csv = get(base + "/csv")
        etag = headers["ETag"]
        key, record = record_for(78)
        store.put(key, record)
        store.merge()
        status, headers2, body = get(base + "/csv", {"If-None-Match": etag})
        assert status == 200
        assert headers2["ETag"] != etag
        fresh = ResultTable.from_store(SweepStore(store.directory)).to_csv()
        assert body.decode("utf-8") == fresh
        assert body.decode("utf-8") != stale_csv.decode("utf-8")

    def test_compact_flips_etag(self, served):
        store, _, base = served
        key, record = record_for(79)
        store.put(key, record)
        _, headers, _ = get(base + "/stats")
        etag = headers["ETag"]
        store.compact()
        _, headers2, _ = get(base + "/stats")
        assert headers2["ETag"] != etag

    def test_error_responses_carry_no_etag(self, served):
        _, _, base = served
        for path in ("/nope", "/records/" + "0" * 64, "/pivot"):
            _, headers, _ = get(base + path)
            assert "ETag" not in headers, path


# ---------------------------------------------------------------------------
# Concurrent readers vs a writer
# ---------------------------------------------------------------------------


class TestConcurrency:
    def test_readers_stay_consistent_under_compact_and_merge(self, served):
        """Every /csv answered while a writer compacts and merges must be
        byte-identical to *some* consistent generation of the store --
        never a torn mix, never an error."""
        store, _, base = served
        valid = {ResultTable.from_store(store).to_csv()}
        stop = threading.Event()
        failures: list[str] = []
        observed: list[str] = []

        def writer():
            # After every mutation, record the consistent CSV of that
            # state; readers' observations are checked against the full
            # set only after everyone joins (a reader may see a new
            # state before this thread has registered it).
            for i in range(80, 88):
                key, record = record_for(i)
                store.put(key, record)
                valid.add(ResultTable.from_store(
                    SweepStore(store.directory)).to_csv())
                if i % 2:
                    store.compact()
                else:
                    store.merge()
                valid.add(ResultTable.from_store(
                    SweepStore(store.directory)).to_csv())
            stop.set()

        def reader():
            while not stop.is_set():
                status, _, body = get(base + "/csv")
                if status != 200:
                    failures.append(f"status {status}")
                    return
                observed.append(body.decode("utf-8"))

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader) for _ in range(3)]
        writer_thread.start()
        for thread in reader_threads:
            thread.start()
        writer_thread.join(timeout=120)
        for thread in reader_threads:
            thread.join(timeout=120)
        assert not failures
        assert observed
        torn = [
            f"{len(text.splitlines())} lines"
            for text in observed if text not in valid
        ]
        assert not torn
        # And the daemon has converged on the final bytes.
        _, _, body = get(base + "/csv")
        final = ResultTable.from_store(SweepStore(store.directory)).to_csv()
        assert body.decode("utf-8") == final


# ---------------------------------------------------------------------------
# Error paths
# ---------------------------------------------------------------------------


class TestErrors:
    def test_unknown_endpoint_404(self, served):
        _, _, base = served
        status, _, body = get(base + "/frobnicate")
        assert status == 404
        assert "error" in json.loads(body)

    def test_missing_record_404(self, served):
        _, _, base = served
        status, _, body = get(base + "/records/" + "0" * 64)
        assert status == 404
        assert "no record" in json.loads(body)["error"]

    def test_malformed_record_key_400(self, served):
        _, _, base = served
        status, _, _ = get(base + "/records/NOT-A-KEY")
        assert status == 400

    def test_bad_query_params_400(self, served):
        _, _, base = served
        cases = [
            "/pivot",  # missing required params
            "/pivot?index=benchmark&column=technique&value=no_such_column",
            "/pivot?index=benchmark&column=technique&value=analytic_success&agg=nope",
            "/marginal?value=analytic_success&bogus=1",
            "/marginal?agg=mean&agg=max",  # repeated parameter
            "/crossovers",  # missing axis
            "/crossovers?axis=benchmark",  # non-numeric axis
        ]
        for path in cases:
            status, _, body = get(base + path)
            assert status == 400, path
            assert "error" in json.loads(body), path

    def test_vanished_store_503_with_warning(self, served, tmp_path, caplog):
        """Deleting the store out from under the daemon must 503 -- not
        silently recreate an empty directory and serve an empty table."""
        import logging
        import shutil

        store, _, base = served
        shutil.rmtree(store.directory)
        with caplog.at_level(logging.WARNING, logger="repro.sweeps.serve"):
            status, _, body = get(base + "/stats")
        assert status == 503
        assert "store unavailable" in json.loads(body)["error"]
        assert any("unreadable" in r.message for r in caplog.records)
        assert not store.directory.exists()  # the 503 path must not mkdir

    def test_failing_bulk_load_503(self, served, monkeypatch, caplog):
        import logging

        from repro.sweeps import analysis

        def boom(*args, **kwargs):
            raise OSError("sidecar exploded")

        monkeypatch.setattr(analysis.ResultTable, "from_store", boom)
        _, _, base = served
        with caplog.at_level(logging.WARNING, logger="repro.sweeps.serve"):
            status, _, body = get(base + "/columns")
        assert status == 503
        assert "store unavailable" in json.loads(body)["error"]

    def test_missing_store_directory_refused_at_construction(self, tmp_path):
        with pytest.raises(OSError):
            SweepServer(tmp_path / "never-created")
        assert not (tmp_path / "never-created").exists()

    def test_bad_tunables_rejected(self, tmp_path):
        filled_store(tmp_path / "store", n=1, merge=False)
        with pytest.raises(ValueError):
            SweepServer(tmp_path / "store", csv_chunk_rows=0)
        with pytest.raises(ValueError):
            SweepServer(tmp_path / "store", cache_payloads=0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_serve_subcommand_ready_line_and_shutdown(self, tmp_path):
        filled_store(tmp_path / "store")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.sweeps", "serve",
             str(tmp_path / "store")],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("SERVE ready port="), line
            fields = dict(
                part.split("=", 1) for part in line.split()[2:]
            )
            assert set(fields) >= {"port", "store", "generation",
                                   "records", "etag"}
            assert fields["records"] == "12"
            port = int(fields["port"])
            status, headers, body = get(f"http://127.0.0.1:{port}/stats")
            assert status == 200
            assert headers["ETag"] == fields["etag"]
        finally:
            proc.terminate()
            proc.wait(timeout=20)

    def test_serve_missing_store_errors(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro.sweeps", "serve",
             str(tmp_path / "nope")],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 1
        assert "does not exist" in result.stderr
        assert not (tmp_path / "nope").exists()

    def test_serve_rejects_bad_flags(self, tmp_path):
        filled_store(tmp_path / "store", n=1, merge=False)
        for flags in (["--port", "-1"], ["--csv-chunk-rows", "0"]):
            result = subprocess.run(
                [sys.executable, "-m", "repro.sweeps", "serve",
                 str(tmp_path / "store"), *flags],
                capture_output=True, text=True, timeout=60,
            )
            assert result.returncode == 2
