"""Tests for repro.core.result."""

import pytest

from repro.circuit.gate import Gate
from repro.core.result import CompilationResult, CompiledLayer
from repro.hardware.spec import HardwareSpec


class TestCompiledLayer:
    def test_counts(self):
        layer = CompiledLayer(
            gates=(Gate("cz", (0, 1)), Gate("u3", (2,), (0.1, 0.2, 0.3)))
        )
        assert layer.num_cz == 1
        assert layer.num_1q == 1

    def test_swap_counts_as_two_qubit(self):
        layer = CompiledLayer(gates=(Gate("swap", (0, 1)),))
        assert layer.num_cz == 1

    def test_frozen(self):
        layer = CompiledLayer(gates=())
        with pytest.raises(AttributeError):
            layer.time_us = 5.0  # type: ignore[misc]


class TestCompilationResult:
    def make(self, **kwargs):
        defaults = dict(
            technique="parallax",
            circuit_name="c",
            num_qubits=4,
            spec=HardwareSpec.quera_aquila(),
        )
        defaults.update(kwargs)
        return CompilationResult(**defaults)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            self.make(num_cz=-1)

    def test_num_layers(self):
        result = self.make(layers=[CompiledLayer(gates=()), CompiledLayer(gates=())])
        assert result.num_layers == 2

    def test_total_move_distance(self):
        layers = [
            CompiledLayer(gates=(), move_distance_um=10.0, return_distance_um=10.0),
            CompiledLayer(gates=(), move_distance_um=5.0),
        ]
        assert self.make(layers=layers).total_move_distance_um == pytest.approx(25.0)

    def test_trap_change_fraction(self):
        result = self.make(num_cz=200, trap_change_events=4)
        assert result.trap_change_fraction == pytest.approx(0.02)

    def test_trap_change_fraction_no_cz(self):
        result = self.make(num_cz=0, trap_change_events=1)
        assert result.trap_change_fraction == 1.0

    def test_summary_round_trip(self):
        result = self.make(num_cz=7, num_u3=9, runtime_us=12.5)
        summary = result.summary()
        assert summary["cz"] == 7
        assert summary["u3"] == 9
        assert summary["runtime_us"] == 12.5
