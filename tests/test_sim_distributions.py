"""Tests for repro.sim.distributions."""

import pytest

from repro.sim.distributions import (
    hellinger_fidelity,
    normalize_counts,
    success_fraction,
    total_variation_distance,
)


class TestNormalize:
    def test_normalizes(self):
        p = normalize_counts({"00": 30, "11": 70})
        assert p["00"] == pytest.approx(0.3)
        assert p["11"] == pytest.approx(0.7)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_counts({"0": -1})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_counts({})


class TestTvd:
    def test_identical_distributions(self):
        p = {"00": 50, "11": 50}
        assert total_variation_distance(p, p) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        assert total_variation_distance({"00": 1}, {"11": 1}) == pytest.approx(1.0)

    def test_symmetry(self):
        p, q = {"0": 30, "1": 70}, {"0": 60, "1": 40}
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )

    def test_known_value(self):
        p, q = {"0": 1, "1": 1}, {"0": 1, "1": 3}
        # p = (.5,.5), q = (.25,.75): TVD = .25
        assert total_variation_distance(p, q) == pytest.approx(0.25)


class TestHellinger:
    def test_identical_is_one(self):
        p = {"00": 2, "01": 3}
        assert hellinger_fidelity(p, p) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        assert hellinger_fidelity({"0": 1}, {"1": 1}) == pytest.approx(0.0)

    def test_bounded(self):
        p, q = {"0": 1, "1": 4}, {"0": 3, "1": 2}
        assert 0.0 < hellinger_fidelity(p, q) < 1.0


class TestSuccessFraction:
    def test_basic(self):
        counts = {"00": 80, "01": 15, "10": 5}
        assert success_fraction(counts, {"00"}) == pytest.approx(0.8)

    def test_multiple_accepted(self):
        counts = {"00": 50, "11": 30, "01": 20}
        assert success_fraction(counts, {"00", "11"}) == pytest.approx(0.8)

    def test_sampled_ghz_matches_ideal(self):
        from repro.benchcircuits.extra import ghz_state
        from repro.sim import sample_counts

        counts = sample_counts(ghz_state(4), shots=4000, seed=2)
        assert success_fraction(counts, {"0000", "1111"}) == pytest.approx(1.0)
        tvd = total_variation_distance(counts, {"0000": 1, "1111": 1})
        assert tvd < 0.05
