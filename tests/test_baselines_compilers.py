"""Tests for the ELDI / Graphine baseline compilers and static scheduling."""

import numpy as np
import pytest

from repro.baselines.eldi import EldiCompiler, EldiConfig
from repro.baselines.graphine_compiler import GraphineCompiler
from repro.baselines.static_schedule import static_schedule
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.hardware.spec import HardwareSpec
from repro.transpile import transpile


def ring_circuit(n=6, rounds=2):
    c = QuantumCircuit(n, "ring")
    for _ in range(rounds):
        for i in range(n):
            c.cz(i, (i + 1) % n)
        for i in range(n):
            c.h(i)
    return c


@pytest.fixture(scope="module")
def spec():
    return HardwareSpec.quera_aquila()


class TestStaticSchedule:
    def test_dependencies_respected(self, spec):
        positions = np.array([[0, 0], [10, 0], [20, 0]], dtype=float)
        gates = [Gate("cz", (0, 1)), Gate("u3", (0,), (0.1, 0.2, 0.3))]
        schedule = static_schedule(gates, positions, blockade_radius=5.0, spec=spec)
        # u3 on qubit 0 must come after the cz.
        first = schedule.layers[0].gates
        assert any(g.name == "cz" for g in first)

    def test_blockade_conflicts_serialize(self, spec):
        # Two CZ pairs well within each other's blockade radius.
        positions = np.array([[0, 0], [1, 0], [2, 0], [3, 0]], dtype=float)
        gates = [Gate("cz", (0, 1)), Gate("cz", (2, 3))]
        schedule = static_schedule(gates, positions, blockade_radius=10.0, spec=spec)
        cz_layers = [l for l in schedule.layers if any(g.name == "cz" for g in l.gates)]
        assert len(cz_layers) == 2

    def test_distant_gates_share_layer(self, spec):
        positions = np.array([[0, 0], [1, 0], [100, 0], [101, 0]], dtype=float)
        gates = [Gate("cz", (0, 1)), Gate("cz", (2, 3))]
        schedule = static_schedule(gates, positions, blockade_radius=10.0, spec=spec)
        assert len(schedule.layers) == 1

    def test_swap_layer_costs_three_cz(self, spec):
        positions = np.array([[0, 0], [1, 0]], dtype=float)
        schedule = static_schedule(
            [Gate("swap", (0, 1))], positions, blockade_radius=5.0, spec=spec
        )
        assert schedule.runtime_us == pytest.approx(3 * spec.cz_time_us)

    def test_runtime_is_layer_sum(self, spec):
        positions = np.array([[0, 0], [1, 0], [2, 0]], dtype=float)
        gates = [Gate("cz", (0, 1)), Gate("u3", (2,), (0.1, 0.2, 0.3))]
        schedule = static_schedule(gates, positions, blockade_radius=3.0, spec=spec)
        assert schedule.runtime_us == pytest.approx(
            sum(l.time_us for l in schedule.layers)
        )


class TestEldiCompiler:
    def test_compiles_and_counts(self, spec):
        result = EldiCompiler(spec).compile(ring_circuit())
        assert result.technique == "eldi"
        base_cz = transpile(ring_circuit()).count_ops()["cz"]
        assert result.num_cz == base_cz + 3 * result.num_swaps

    def test_no_movement_no_trap_changes(self, spec):
        result = EldiCompiler(spec).compile(ring_circuit())
        assert result.num_moves == 0
        assert result.trap_change_events == 0
        assert result.aod_qubits == ()

    def test_compact_placement_footprint(self, spec):
        # 6 qubits placed compactly near the grid center.
        result = EldiCompiler(spec).compile(ring_circuit())
        rows, cols = result.footprint_sites
        assert rows * cols <= 16

    def test_radius_covers_diagonals(self, spec):
        result = EldiCompiler(spec).compile(ring_circuit())
        assert result.interaction_radius_um > spec.grid_pitch_um * 1.4

    def test_too_many_qubits_rejected(self, spec):
        c = QuantumCircuit(257)
        c.cz(0, 256)
        with pytest.raises(ValueError, match="exceed"):
            EldiCompiler(spec).compile(c)

    def test_deterministic(self, spec):
        a = EldiCompiler(spec).compile(ring_circuit())
        b = EldiCompiler(spec).compile(ring_circuit())
        assert a.num_cz == b.num_cz
        assert a.runtime_us == pytest.approx(b.runtime_us)


class TestGraphineCompiler:
    def test_compiles_and_counts(self, spec):
        result = GraphineCompiler(spec).compile(ring_circuit())
        assert result.technique == "graphine"
        base_cz = transpile(ring_circuit()).count_ops()["cz"]
        assert result.num_cz == base_cz + 3 * result.num_swaps

    def test_custom_layout_no_movement(self, spec):
        result = GraphineCompiler(spec).compile(ring_circuit())
        assert result.num_moves == 0
        assert result.aod_qubits == ()

    def test_radius_at_least_one_pitch(self, spec):
        result = GraphineCompiler(spec).compile(ring_circuit())
        assert result.interaction_radius_um >= spec.grid_pitch_um

    def test_runtime_positive(self, spec):
        assert GraphineCompiler(spec).compile(ring_circuit()).runtime_us > 0


class TestPaperOrdering:
    """The headline orderings of Fig. 9 hold on representative circuits."""

    def test_parallax_never_more_cz(self, spec):
        from repro.core.compiler import ParallaxCompiler

        circuit = ring_circuit()
        parallax = ParallaxCompiler(spec).compile(circuit)
        eldi = EldiCompiler(spec).compile(circuit)
        graphine = GraphineCompiler(spec).compile(circuit)
        assert parallax.num_cz <= eldi.num_cz
        assert parallax.num_cz <= graphine.num_cz

    def test_high_connectivity_gap_larger(self, spec):
        from repro.core.compiler import ParallaxCompiler

        # All-to-all circuit (QV-like) vs chain (TFIM-like).
        dense = QuantumCircuit(8, "dense")
        for a in range(8):
            for b in range(a + 1, 8):
                dense.cz(a, b)
        chain = QuantumCircuit(8, "chain")
        for _ in range(4):
            for i in range(7):
                chain.cz(i, i + 1)
            for i in range(8):
                chain.h(i)  # keep rounds from cancelling (CZs commute)

        def swap_overhead(circuit):
            parallax = ParallaxCompiler(spec).compile(circuit)
            graphine = GraphineCompiler(spec).compile(circuit)
            return (graphine.num_cz - parallax.num_cz) / parallax.num_cz

        assert swap_overhead(dense) >= swap_overhead(chain)
