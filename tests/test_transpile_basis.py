"""Tests for repro.transpile.basis: every template is unitary-equivalent."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.circuit.matrices import circuit_unitary, gate_unitary
from repro.transpile.basis import decompose_gate, decompose_to_basis


def equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    idx = np.unravel_index(np.abs(b).argmax(), b.shape)
    phase = a[idx] / b[idx]
    return np.allclose(a, phase * b, atol=atol)


def gate_equiv(gate: Gate, num_qubits: int) -> bool:
    expected = circuit_unitary([gate], num_qubits)
    actual = circuit_unitary(decompose_gate(gate), num_qubits)
    return equal_up_to_phase(actual, expected)


ONE_QUBIT = [
    Gate("x", (0,)), Gate("y", (0,)), Gate("z", (0,)), Gate("h", (0,)),
    Gate("s", (0,)), Gate("sdg", (0,)), Gate("t", (0,)), Gate("tdg", (0,)),
    Gate("sx", (0,)), Gate("rx", (0,), (0.3,)), Gate("ry", (0,), (1.2,)),
    Gate("rz", (0,), (-0.7,)), Gate("u2", (0,), (0.1, 0.2)),
    Gate("u1", (0,), (0.9,)), Gate("p", (0,), (0.4,)),
]

TWO_QUBIT = [
    Gate("cx", (0, 1)), Gate("cx", (1, 0)), Gate("cy", (0, 1)),
    Gate("ch", (0, 1)), Gate("swap", (0, 1)), Gate("iswap", (0, 1)),
    Gate("cp", (0, 1), (0.8,)), Gate("cu1", (0, 1), (-0.5,)),
    Gate("crx", (0, 1), (0.6,)), Gate("cry", (0, 1), (1.1,)),
    Gate("crz", (0, 1), (0.25,)), Gate("cu3", (0, 1), (0.3, 0.7, -0.4)),
    Gate("rxx", (0, 1), (0.55,)), Gate("ryy", (0, 1), (0.85,)),
    Gate("rzz", (0, 1), (1.3,)),
]

THREE_QUBIT = [
    Gate("ccx", (0, 1, 2)), Gate("ccx", (2, 0, 1)), Gate("ccz", (0, 1, 2)),
    Gate("cswap", (0, 1, 2)), Gate("cswap", (1, 2, 0)),
]


class TestDecompositions:
    @pytest.mark.parametrize("gate", ONE_QUBIT, ids=lambda g: f"{g.name}")
    def test_one_qubit_equivalent(self, gate):
        assert gate_equiv(gate, 1)

    @pytest.mark.parametrize("gate", ONE_QUBIT, ids=lambda g: f"{g.name}")
    def test_one_qubit_becomes_single_u3(self, gate):
        out = decompose_gate(gate)
        assert len(out) == 1 and out[0].name == "u3"

    @pytest.mark.parametrize("gate", TWO_QUBIT, ids=lambda g: f"{g.name}-{g.qubits}")
    def test_two_qubit_equivalent(self, gate):
        assert gate_equiv(gate, 2)

    @pytest.mark.parametrize("gate", THREE_QUBIT, ids=lambda g: f"{g.name}-{g.qubits}")
    def test_three_qubit_equivalent(self, gate):
        assert gate_equiv(gate, 3)

    @pytest.mark.parametrize("gate", TWO_QUBIT + THREE_QUBIT, ids=lambda g: f"{g.name}-{g.qubits}")
    def test_output_in_basis(self, gate):
        for out in decompose_gate(gate):
            assert out.name in ("u3", "cz")

    def test_cz_passes_through(self):
        gate = Gate("cz", (0, 1))
        assert decompose_gate(gate) == [gate]

    def test_u3_passes_through(self):
        gate = Gate("u3", (0,), (0.1, 0.2, 0.3))
        assert decompose_gate(gate) == [gate]

    def test_barrier_passes_through(self):
        gate = Gate("barrier", (0,))
        assert decompose_gate(gate) == [gate]

    def test_swap_costs_three_cz(self):
        out = decompose_gate(Gate("swap", (0, 1)))
        assert sum(1 for g in out if g.name == "cz") == 3

    def test_toffoli_costs_six_cz(self):
        out = decompose_gate(Gate("ccx", (0, 1, 2)))
        assert sum(1 for g in out if g.name == "cz") == 6


class TestDecomposeToBasis:
    def test_whole_circuit_equivalent(self):
        c = QuantumCircuit(3)
        c.h(0).cx(0, 1).ccx(0, 1, 2).rz(2, 0.4).swap(1, 2)
        basis = decompose_to_basis(c)
        assert equal_up_to_phase(
            circuit_unitary(basis.gates, 3), circuit_unitary(c.gates, 3)
        )
        assert all(g.name in ("u3", "cz") for g in basis)

    def test_preserves_num_qubits_and_name(self):
        c = QuantumCircuit(4, name="x").h(0)
        basis = decompose_to_basis(c)
        assert basis.num_qubits == 4
