"""Tests for repro.analysis.diagnostics."""

import pytest

from repro.analysis.diagnostics import diagnose, format_diagnostics
from repro.circuit.gate import Gate
from repro.core.result import CompilationResult, CompiledLayer
from repro.hardware.spec import HardwareSpec


def make_result(layers, **kwargs):
    defaults = dict(
        technique="parallax",
        circuit_name="t",
        num_qubits=4,
        spec=HardwareSpec.quera_aquila(),
        layers=layers,
        num_cz=sum(l.num_cz for l in layers),
        runtime_us=sum(l.time_us for l in layers),
    )
    defaults.update(kwargs)
    return CompilationResult(**defaults)


def cz_layer(move=0.0, traps=0, time_us=0.8):
    return CompiledLayer(
        gates=(Gate("cz", (0, 1)),),
        move_distance_um=move,
        trap_changes=traps,
        time_us=time_us,
    )


class TestDiagnose:
    def test_layer_statistics(self):
        layers = [cz_layer(), cz_layer(), CompiledLayer(
            gates=(Gate("u3", (0,), (0.1, 0.2, 0.3)), Gate("u3", (1,), (0.1, 0.2, 0.3))),
            time_us=2.0,
        )]
        diag = diagnose(make_result(layers))
        assert diag.num_layers == 3
        assert diag.mean_gates_per_layer == pytest.approx(4 / 3)
        assert diag.max_gates_per_layer == 2

    def test_trap_change_fraction(self):
        # 210 us covers the ~200 us trap-change resolution, keeping the
        # layer records consistent with the declared runtime.
        layers = [cz_layer(traps=1, time_us=210.0), cz_layer()]
        result = make_result(layers, trap_change_events=1)
        diag = diagnose(result)
        assert diag.trap_change_fraction == pytest.approx(0.5)

    def test_movement_statistics(self):
        layers = [cz_layer(move=10.0), cz_layer(move=30.0), cz_layer()]
        diag = diagnose(make_result(layers))
        assert diag.layers_with_movement == 2
        assert diag.mean_move_distance_um == pytest.approx(20.0)
        assert diag.max_move_distance_um == pytest.approx(30.0)

    def test_time_fractions_sum_to_one(self):
        layers = [cz_layer(move=55.0, traps=1, time_us=210.0)]
        result = make_result(layers, trap_change_events=1)
        diag = diagnose(result)
        total = (
            diag.gate_time_fraction
            + diag.movement_time_fraction
            + diag.trap_time_fraction
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_empty_result(self):
        diag = diagnose(make_result([]))
        assert diag.num_layers == 0
        assert diag.mean_gates_per_layer == 0.0


class TestFlags:
    def test_clean_compilation_no_flags(self):
        diag = diagnose(make_result([cz_layer() for _ in range(3)]))
        assert diag.flags() == []

    def test_cramped_topology_flagged(self):
        layers = [cz_layer(traps=1, time_us=210.0) for _ in range(10)]
        result = make_result(layers, trap_change_events=10)
        flags = diagnose(result).flags()
        assert any("cramped" in f for f in flags)

    def test_real_tfim_compilation_is_flagged(self):
        from repro.experiments.common import compile_one

        result = compile_one("parallax", "TFIM", HardwareSpec.quera_aquila())
        flags = diagnose(result).flags()
        assert flags  # the paper's own pathological case

    def test_real_small_compilation_is_clean(self):
        from repro.experiments.common import compile_one

        result = compile_one("parallax", "ADV", HardwareSpec.quera_aquila())
        assert diagnose(result).trap_change_fraction <= 0.05


class TestFormat:
    def test_report_contains_key_lines(self):
        text = format_diagnostics(diagnose(make_result([cz_layer()])))
        assert "layers" in text
        assert "trap-change fraction" in text
        assert "runtime split" in text

    def test_warnings_rendered(self):
        layers = [cz_layer(traps=1, time_us=210.0) for _ in range(10)]
        result = make_result(layers, trap_change_events=10)
        text = format_diagnostics(diagnose(result))
        assert "WARNING" in text
